(* Plan execution.

   The engine's contribution is the set-oriented organization of the
   iteration: hash tables for equi-joins, semijoins, antijoins and
   nestjoins, a sort-merge alternative, the PNHL algorithm for set-valued
   attribute materialization, and assembly for pointer dereferencing.

   Parameter expressions (join keys, filter predicates, residuals, map and
   nestjoin bodies) are compiled once per operator into closures
   ([Njq_adl.Compile]) before iterating, so no per-tuple AST dispatch or
   environment allocation remains in the loops; flipping [compile_params]
   reverts to per-tuple reference evaluation for measurement.  Set results
   are deduplicated with a hash set over the memoized [Value.hash] instead
   of a full sort.

   Execution is push-based and pipelined by default: every operator that
   can stream ([Plan.streams_output]) compiles to an emitter that pushes
   rows into its consumer's callback, so a Scan -> Filter -> Map -> probe
   chain runs as one fused loop with no intermediate lists.  Pipeline
   breakers materialize only where semantics demand it: hash build sides
   (straight into the table, no build list), sort-merge inputs, NestOp
   grouping, division, PNHL/Grace partitioning and the parallel operators'
   partition buffers.  Flipping [pipeline_exec] reverts to
   materialize-every-edge execution; both modes produce identical row
   lists (same rows, same order) and identical counter totals, which the
   bench harness and the agreement test suite assert.

   Work counters tick exactly once per logical event in either mode, so
   counter totals are mode-invariant and remain pool-size-invariant (see
   DESIGN.md sections 7 and 8).

   Larger-than-memory execution: when a Grace/PNHL partition count exceeds
   one, partitions are real spill files ([Rowcodec]) processed one resident
   partition at a time (with recursive repartitioning on key skew), and the
   sort-merge paths switch to an external run-generation + K-way merge sort
   when an input exceeds [Memory.budget].  Spilling never changes results:
   partition assignment and merge order reproduce the in-memory
   permutations exactly.

   Work counters (see [Njq_adl.Counters]): "scan_row", "filter_eval",
   "hash_build", "hash_probe", "nl_pair", "sm_cmp", "pnhl_partition",
   "pnhl_build", "pnhl_probe", plus "oid_lookup" from [Catalog.deref].
   Spill activity ticks "spill_part" (per spill file), "spill_row" and
   "spill_bytes" (per encoded row), "ext_sort_run" (per sorted run) and
   "ext_sort_merge" (per merged-out row). *)

open Njq_adl

exception Exec_error of string

let exec_error fmt = Fmt.kstr (fun s -> raise (Exec_error s)) fmt

module VTbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal

  (* Full-depth structural hash, memoized on set nodes; consistent with
     [Value.equal] because values are canonical. *)
  let hash = Value.hash
end)

(* Ordered composite key for multi-attribute equi joins: one slot per key
   pair, compared and hashed positionally.  Unlike the former [Value.VSet]
   encoding, key identity cannot depend on canonical set ordering or on the
   order in which attribute values happen to be evaluated. *)
module Key = struct
  type t = Value.t array

  let equal a b =
    Array.length a = Array.length b
    &&
    let rec go i = i < 0 || (Value.equal a.(i) b.(i) && go (i - 1)) in
    go (Array.length a - 1)

  let hash k =
    Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) (Array.length k) k
end

module KTbl = Hashtbl.Make (Key)

(* Parameter-expression mode: [true] (default) compiles each operator's
   parameter expressions once into closures; [false] falls back to
   per-tuple reference evaluation.  The bench harness flips the flag to
   measure the compiled layer's win on identical plans. *)
let compile_params = ref true

(* Execution mode: [true] (default) pushes rows through fused operator
   chains; [false] materializes every operator boundary as a full list,
   as the engine did before the pipelined executor existed.  Results and
   counter totals are identical either way — the flag exists so the bench
   harness can contrast the two modes on identical plans (b13). *)
let pipeline_exec = ref true

(* Batch mode: [true] (default) moves rows through fused chains as
   [Batch.t] column batches — scans cut zero-copy windows out of the
   catalog's row array, filters mark survivors in selection vectors, and
   comparison predicates run over decoded typed columns.  Only reachable
   under [pipeline_exec]; rows, order and counter totals are identical to
   the row-at-a-time pipelines (the b15 contract), so the flag exists for
   the bench harness and as an escape hatch. *)
let batch_exec = ref true

let param1 cat ~var e =
  if !compile_params then Compile.expr1 cat ~var e
  else fun v -> Eval.eval cat [ (var, v) ] e

let pred1 cat ~var e =
  if !compile_params then Compile.pred1 cat ~var e
  else fun v -> Eval.run_pred cat [ (var, v) ] e

let param2 cat ~vars:((a, b) as vars) e =
  if !compile_params then Compile.expr2 cat ~vars e
  else fun va vb -> Eval.eval cat [ (a, va); (b, vb) ] e

let pred2 cat ~vars:((a, b) as vars) e =
  if !compile_params then Compile.pred2 cat ~vars e
  else fun va vb -> Eval.run_pred cat [ (a, va); (b, vb) ] e

(* Spawner variants for the parallel operators: compiled closures carry a
   per-instance slot buffer, so a partition task running on a pool domain
   must mint its own instance ([Compile]'s spawners share the compiled
   code, which is immutable).  The interpreted fallback is stateless and
   spawns itself. *)

let param1_spawner cat ~var e =
  if !compile_params then Compile.expr1_spawner cat ~var e
  else fun () v -> Eval.eval cat [ (var, v) ] e

let pred1_spawner cat ~var e =
  if !compile_params then Compile.pred1_spawner cat ~var e
  else fun () v -> Eval.run_pred cat [ (var, v) ] e

let param2_spawner cat ~vars:((a, b) as vars) e =
  if !compile_params then Compile.expr2_spawner cat ~vars e
  else fun () va vb -> Eval.eval cat [ (a, va); (b, vb) ] e

let pred2_spawner cat ~vars:((a, b) as vars) e =
  if !compile_params then Compile.pred2_spawner cat ~vars e
  else fun () va vb -> Eval.run_pred cat [ (a, va); (b, vb) ] e

(* Compiled extractor for one side of the equi-join keys. *)
let key_fns cat var side keys =
  let fns =
    Array.of_list
      (List.map
         (fun (kx, ky) ->
           param1 cat ~var (match side with `Left -> kx | `Right -> ky))
         keys)
  in
  fun row -> Array.map (fun f -> f row) fns

let residual_fn cat xvar yvar residual =
  if Expr.is_true residual then fun _ _ -> true
  else pred2 cat ~vars:(xvar, yvar) residual

let key_fns_spawner cat var side keys =
  let spawners =
    Array.of_list
      (List.map
         (fun (kx, ky) ->
           param1_spawner cat ~var (match side with `Left -> kx | `Right -> ky))
         keys)
  in
  fun () ->
    let fns = Array.map (fun s -> s ()) spawners in
    fun row -> Array.map (fun f -> f row) fns

let residual_spawner cat xvar yvar residual =
  if Expr.is_true residual then fun () _ _ -> true
  else pred2_spawner cat ~vars:(xvar, yvar) residual

(* Resolve the catalog index an access-path node refers to.  The planner
   only emits nodes for indexes it found in the catalog, so a miss means
   the plan outlived a catalog it was not derived from. *)
let find_index cat name =
  match Catalog.find_index cat name with
  | Some idx -> idx
  | None -> exec_error "unknown index %s" name

(* Fetch the candidate rows of an [IndexScan]'s lookup.  The lookup
   expressions are closed (the planner only extracts conjuncts with no
   free variables), so they evaluate once per operator, not per row.
   Probe/row counters tick inside the catalog. *)
let index_fetch cat idx (lookup : Plan.index_lookup) =
  match lookup with
  | Plan.LPoint keys ->
    Catalog.index_lookup_eq cat idx
      (Array.of_list (List.map (fun e -> Eval.eval cat [] e) keys))
  | Plan.LRange { lo; hi } ->
    let bound = Option.map (fun (e, incl) -> (Eval.eval cat [] e, incl)) in
    Catalog.index_lookup_range cat idx ~lo:(bound lo) ~hi:(bound hi)

(* Per-row attribute rename for access paths that absorbed a [RenameOp]
   over the scan they replaced; identity when the pair list is empty. *)
let renamer pairs =
  if pairs = [] then Fun.id
  else fun row ->
    Value.tuple
      (List.map
         (fun (n, v) ->
           match List.assoc_opt n pairs with
           | Some n' -> (n', v)
           | None -> (n, v))
         (Value.as_tuple row))

(* Work counters, interned once into registry handles so the inner loops
   pay a flag read and a field add per tick instead of a string-hashtable
   probe (see [Njq_obs.Metrics]).  [Counters.get]/[snapshot] still see
   these — both doors share the same cells. *)
module M = Njq_obs.Metrics
module Clock = Njq_obs.Clock
module Span = Njq_obs.Span

let c_scan_row = M.counter "scan_row"
let c_filter_eval = M.counter "filter_eval"
let c_hash_build = M.counter "hash_build"
let c_hash_probe = M.counter "hash_probe"
let c_nl_pair = M.counter "nl_pair"
let c_sm_cmp = M.counter "sm_cmp"
let c_grace_partition = M.counter "grace_partition"
let c_grace_partition_row = M.counter "grace_partition_row"
let c_pnhl_partition = M.counter "pnhl_partition"
let c_pnhl_build = M.counter "pnhl_build"
let c_pnhl_probe = M.counter "pnhl_probe"
let c_par_partition = M.counter "par_partition"
let c_par_partition_row = M.counter "par_partition_row"
let c_spill_part = M.counter "spill_part"
let c_spill_row = M.counter "spill_row"
let c_spill_bytes = M.counter "spill_bytes"
let c_ext_sort_run = M.counter "ext_sort_run"
let c_ext_sort_merge = M.counter "ext_sort_merge"

(* Wall-time distribution of individual parallel tasks (partitions /
   chunks / batches), recorded per domain and merged at pool join. *)
let h_par_task = M.histogram "par_task_ns"

(* Wrap one parallel task body: its wall time lands in [h_par_task], and
   under tracing a completed span (tagged with the recording domain — the
   Chrome exporter's [tid] lane) is emitted from whichever domain ran the
   task, so partition work is attributable in [--trace-out] output. *)
let par_task name task i =
  let t0 = Clock.now_ns () in
  let finish () =
    M.observe h_par_task (Clock.elapsed_ns t0);
    if Span.tracing_enabled () then
      Span.emit ~start_ns:t0 ~attrs:[ ("task", Span.AInt i) ] name
  in
  match task i with
  | r ->
    finish ();
    r
  | exception exn ->
    finish ();
    raise exn

(* Non-negative partition index from a value hash ([Value.hash] can go
   negative through multiplicative overflow). *)
let bucket_of_hash h partitions = (h land max_int) mod partitions

(* Contiguous chunk boundaries for the parallel scan-shaped operators: the
   chunk count adapts to the pool (it cannot affect results — chunks are
   re-concatenated in order — only load balance). *)
let par_chunks n =
  let d = Pool.domains () in
  if n <= 1 || d <= 1 then [| (0, n) |]
  else begin
    let k = min n (d * 4) in
    let size = (n + k - 1) / k in
    Array.init k (fun i -> (i * size, min n ((i + 1) * size)))
  end

(* Initial hash-table size for a build side, from the planner's cardinality
   estimate instead of an extra O(n) [List.length] pass over the already
   materialized build list.  Clamped: at least 16 buckets (the former fixed
   floor), at most 1M so a wild estimate (or a [max_int] memory budget used
   as a cap) cannot pre-allocate an absurd bucket array. *)
let tbl_size ?cap cat p =
  let est = int_of_float (Float.min 1_000_000.0 (Cost.rows_out cat p)) in
  let est = match cap with Some c -> min est c | None -> est in
  max 16 est

(* ---------------------------------------------------------------------- *)
(* Spill helpers                                                           *)
(* ---------------------------------------------------------------------- *)

(* Write one row to a spill file, charging the spill counters. *)
let spill_row sp row =
  let bytes = Rowcodec.spill_add sp row in
  M.incr c_spill_row;
  M.incr ~n:bytes c_spill_bytes

(* Spill [rows_] into ceil(n / mem_budget) files of at most [mem_budget]
   rows each, preserving row order (file s holds rows [s * mem_budget ..)).
   Used by the PNHL paths, whose segments are contiguous row ranges. *)
let spill_segments ~mem_budget rows_ =
  let n_rows = List.length rows_ in
  let nsegs = (n_rows + mem_budget - 1) / mem_budget in
  let sps =
    Array.init nsegs (fun _ -> Rowcodec.spill_create ~prefix:"njq-pnhl" ())
  in
  M.incr ~n:nsegs c_spill_part;
  List.iteri (fun i row -> spill_row sps.(i / mem_budget) row) rows_;
  sps

(* External merge sort for the sort-merge join paths.  Runs are contiguous
   [budget]-row chunks of the input, each sorted in memory with the
   caller's comparator ([List.sort], stable) and spilled; the K-way merge
   picks the smallest head, breaking ties toward the earliest run.  Because
   runs are contiguous input chunks and ties resolve to the earliest run,
   the merged output is exactly the stable-sort permutation [List.sort cmp]
   would produce — spilling cannot change join results.  Only the K run
   heads are decoded at once; each run's remaining rows stay as undecoded
   bytes.  Comparator ticks ("sm_cmp" in the callers) differ from the
   in-memory sort's — external sorting changes the comparison schedule, not
   the outcome. *)
let external_sort_pairs budget cmp pairs =
  let rec chunks rest =
    match rest with
    | [] -> []
    | _ ->
      let rec take n acc = function
        | rest when n = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | p :: rest -> take (n - 1) (p :: acc) rest
      in
      let chunk, rest = take budget [] rest in
      chunk :: chunks rest
  in
  let spill_run chunk =
    let sp = Rowcodec.spill_create ~prefix:"njq-sort" () in
    M.incr c_ext_sort_run;
    M.incr c_spill_part;
    List.iter
      (fun (k, v) -> spill_row sp (Value.of_sorted_fields [ ("k", k); ("v", v) ]))
      (List.sort cmp chunk);
    sp
  in
  let runs = Array.of_list (List.map spill_run (chunks pairs)) in
  Fun.protect
    ~finally:(fun () -> Array.iter Rowcodec.spill_remove runs)
    (fun () ->
      let decs = Array.map Rowcodec.spill_decoder runs in
      let next dec =
        match Rowcodec.decode_record dec with
        | Some (Value.VTuple [ ("k", k); ("v", v) ]) -> Some (k, v)
        | Some _ -> raise (Rowcodec.Corrupt "external sort: malformed run record")
        | None -> None
      in
      let heads = Array.map next decs in
      let out = ref [] in
      let merging = ref true in
      while !merging do
        let best = ref (-1) in
        Array.iteri
          (fun i h ->
            match h with
            | None -> ()
            | Some p ->
              if !best = -1 then best := i
              else begin
                match heads.(!best) with
                | Some q -> if cmp p q < 0 then best := i
                | None -> assert false
              end)
          heads;
        if !best = -1 then merging := false
        else begin
          let i = !best in
          match heads.(i) with
          | Some p ->
            M.incr c_ext_sort_merge;
            out := p :: !out;
            heads.(i) <- next decs.(i)
          | None -> assert false
        end
      done;
      List.rev !out)

(* Sort keyed pairs for a sort-merge join: in memory when the input fits
   the engine budget ({!Memory.budget}), externally otherwise.  Both paths
   produce the identical (stable) permutation. *)
let sort_pairs cmp pairs =
  let budget = !Memory.budget in
  if budget = max_int || List.length pairs <= budget then List.sort cmp pairs
  else external_sort_pairs budget cmp pairs

(* Allocation counters: cumulative minor- and major-heap words (the major
   figure includes promotions, like [Gc.stat]'s); [Gc.counters] reads
   three globals without walking the heap, so the brackets themselves
   perturb nothing. *)
let alloc_words () =
  let minor, _promoted, major = Gc.counters () in
  (minor, major)

(* --------------------------------------------------------------------- *)
(* Non-perturbing per-operator profiling                                  *)
(*                                                                        *)
(* When a collector is installed (see [collect]), the [rows] dispatcher   *)
(* brackets every plan-node execution with clock, counter and allocation  *)
(* readings and records one [node_sample] per node — the plan tree itself *)
(* executes unchanged, so row counts, counter totals and algorithmic      *)
(* behaviour are exactly those of an unprofiled run.  Children charge     *)
(* their inclusive totals to the parent frame, so exclusive (self) time,  *)
(* work and allocation fall out by subtraction.  Under pipelined          *)
(* execution a fused chain runs as one loop: the node that owns the loop  *)
(* (the one [rows] was called on) gets the bracketed sample, and every    *)
(* operator fused into it still records a sample with its exact output    *)
(* row count but zero time/work/allocation — the owner's exclusive        *)
(* figures cover the whole fused loop (documented in [Profile]).          *)
(* Samples are keyed by the physical identity of the [Plan.t] node;       *)
(* [Profile] joins them back to the tree.                                 *)
(* --------------------------------------------------------------------- *)

type node_sample = {
  sample_plan : Plan.t;  (* physical node identity, compare with [==] *)
  out_rows : int;
  wall_ns : int;  (* exclusive of children *)
  cpu_s : float;  (* exclusive of children *)
  incl_wall_ns : int;
  incl_cpu_s : float;
  work : (string * int) list;  (* exclusive counter deltas, sorted *)
  minor_words : float;  (* Gc.minor_words delta, exclusive of children *)
  major_words : float;  (* Gc.major_words delta, exclusive of children *)
}

type frame = {
  mutable f_child_wall : int;
  mutable f_child_cpu : float;
  mutable f_child_work : (string * int) list;  (* children-inclusive, summed *)
  mutable f_child_minor : float;
  mutable f_child_major : float;
}

type collector = {
  mutable samples : node_sample list;  (* reverse completion order *)
  mutable stack : frame list;
}

let collector : collector option ref = ref None

(* Pointwise sum / difference of sorted counter-delta assoc lists. *)
let merge_work op a b =
  let rec go a b =
    match a, b with
    | [], rest -> List.filter_map (fun (k, v) -> op0 k v) rest
    | rest, [] -> rest
    | (ka, va) :: ta, (kb, vb) :: tb ->
      let c = String.compare ka kb in
      if c < 0 then (ka, va) :: go ta b
      else if c > 0 then (
        match op0 kb vb with
        | Some kv -> kv :: go a tb
        | None -> go a tb)
      else
        let v = op va vb in
        if v = 0 then go ta tb else (ka, v) :: go ta tb
  and op0 k v =
    let v = op 0 v in
    if v = 0 then None else Some (k, v)
  in
  go a b

let add_work = merge_work ( + )
let sub_work = merge_work ( - )

let rec exec_node (cat : Catalog.t) (p : Plan.t) : Value.t list =
  match p with
  | Plan.Scan name ->
    let rs = Catalog.rows cat name in
    M.incr ~n:(List.length rs) c_scan_row;
    rs
  | Plan.Filter { var; pred; input } ->
    let pred = pred1 cat ~var pred in
    List.filter
      (fun row ->
        M.incr c_filter_eval;
        pred row)
      (rows cat input)
  | Plan.IndexScan { index; var; lookup; residual; rename; _ } ->
    let ren = renamer rename in
    let matched = List.map ren (index_fetch cat (find_index cat index) lookup) in
    if Expr.is_true residual then matched
    else begin
      let pred = pred1 cat ~var residual in
      List.filter
        (fun row ->
          M.incr c_filter_eval;
          pred row)
        matched
    end
  | Plan.IndexJoin { kind; xvar; yvar; index; keys; residual; rename; left; _ }
    ->
    let idx = find_index cat index in
    let ren = renamer rename in
    let xkey = key_fns cat xvar `Left (List.map (fun e -> (e, e)) keys) in
    let residual = residual_fn cat xvar yvar residual in
    let probe x = List.map ren (Catalog.index_lookup_eq cat idx (xkey x)) in
    let matches x = List.filter (residual x) (probe x) in
    let has_match x = List.exists (residual x) (probe x) in
    let xs = rows cat left in
    (match kind with
     | Expr.Inner ->
       dedup
         (List.concat_map (fun x -> List.map (Value.concat x) (matches x)) xs)
     | Expr.Semi -> List.filter has_match xs
     | Expr.Anti -> List.filter (fun x -> not (has_match x)) xs
     | Expr.LeftOuter _ -> exec_error "index join does not support outer joins")
  | Plan.MapOp { var; body; input } ->
    let body = param1 cat ~var body in
    dedup (List.map body (rows cat input))
  | Plan.ProjectOp (attrs, input) ->
    dedup (List.map (fun row -> Value.project row attrs) (rows cat input))
  | Plan.FlattenOp input ->
    dedup (List.concat_map Value.as_set (rows cat input))
  | Plan.UnionOp (a, b) ->
    (* Both sides feed one dedup sink: the former [rows a @ rows b]
       re-consed the entire left result just to glue the lists before a
       separate dedup pass. *)
    let seen = VTbl.create 64 in
    let acc = ref [] in
    let add v =
      if not (VTbl.mem seen v) then begin
        VTbl.add seen v ();
        acc := v :: !acc
      end
    in
    push cat a add;
    push cat b add;
    List.rev !acc
  | Plan.InterOp (a, b) ->
    let tbl = VTbl.create (tbl_size cat b) in
    List.iter (fun v -> VTbl.replace tbl v ()) (rows cat b);
    List.filter (VTbl.mem tbl) (rows cat a)
  | Plan.DiffOp (a, b) ->
    let tbl = VTbl.create (tbl_size cat b) in
    List.iter (fun v -> VTbl.replace tbl v ()) (rows cat b);
    List.filter (fun v -> not (VTbl.mem tbl v)) (rows cat a)
  | Plan.ProductOp (a, b) ->
    let ys = rows cat b in
    dedup
      (List.concat_map
         (fun x -> List.map (fun y -> Value.concat x y) ys)
         (rows cat a))
  | Plan.JoinOp { algo; kind; xvar; yvar; keys; residual; left; right } ->
    exec_join cat algo kind xvar yvar keys residual left right
  | Plan.NestjoinOp { algo; xvar; yvar; keys; residual; body; attr; left; right } ->
    exec_nestjoin cat algo xvar yvar keys residual body attr left right
  | Plan.MemberJoin { kind; xvar; yvar; xset; elem_var; elem_key; ykey; left; right }
    ->
    let xs = rows cat left and ys = rows cat right in
    let ykey = param1 cat ~var:yvar ykey in
    let xset = param1 cat ~var:xvar xset in
    let elem_key = param2 cat ~vars:(elem_var, xvar) elem_key in
    let tbl = VTbl.create (tbl_size cat right) in
    List.iter
      (fun y ->
        M.incr c_hash_build;
        VTbl.add tbl (ykey y) y)
      ys;
    let matches x =
      List.concat_map
        (fun e ->
          M.incr c_hash_probe;
          VTbl.find_all tbl (elem_key e x))
        (Value.as_set (xset x))
    in
    (* Semi/anti probes stop at the first matching element instead of
       materializing every match; only the probes performed are ticked. *)
    let has_match x =
      List.exists
        (fun e ->
          M.incr c_hash_probe;
          VTbl.mem tbl (elem_key e x))
        (Value.as_set (xset x))
    in
    (match kind with
     | Plan.MSemi -> List.filter has_match xs
     | Plan.MAnti -> List.filter (fun x -> not (has_match x)) xs
     | Plan.MInner ->
       dedup (List.concat_map (fun x -> List.map (Value.concat x) (matches x)) xs)
     | Plan.MNest { body; attr } ->
       let body = param2 cat ~vars:(xvar, yvar) body in
       List.map
         (fun x ->
           let ms = dedup (matches x) in
           let projected = List.map (fun y -> body x y) ms in
           Value.concat x (Value.tuple [ (attr, Value.set projected) ]))
         xs)
  | Plan.GraceJoin { kind; xvar; yvar; keys; residual; mem_budget; left; right }
    ->
    if mem_budget <= 0 then exec_error "grace join: memory budget must be positive";
    (match kind with
     | Expr.LeftOuter _ -> exec_error "grace join does not support outer joins"
     | _ -> ());
    let xs = rows cat left and ys = rows cat right in
    let kx0, ky0 =
      match keys with
      | k :: _ -> k
      | [] -> exec_error "grace join without equi keys"
    in
    let kx0 = param1 cat ~var:xvar kx0 and ky0 = param1 cat ~var:yvar ky0 in
    (* Compile keys and residual once; every partition pair reuses them. *)
    let xkey = key_fns cat xvar `Left keys and ykey = key_fns cat yvar `Right keys in
    let residual = residual_fn cat xvar yvar residual in
    (* Each partition's build side holds at most [mem_budget] rows. *)
    let build_hint = tbl_size ~cap:mem_budget cat right in
    let out = ref [] in
    grace_partitioned kind ~kx0 ~ky0 ~xkey ~ykey ~residual ~build_hint
      ~mem_budget ~depth:0 xs ys (List.length ys) out;
    dedup !out
  | Plan.RenameOp (pairs, input) ->
    List.map
      (fun row ->
        Value.tuple
          (List.map
             (fun (n, v) ->
               match List.assoc_opt n pairs with
               | Some n' -> (n', v)
               | None -> (n, v))
             (Value.as_tuple row)))
      (rows cat input)
  | Plan.UnnestOp (a, input) ->
    let as_row inner =
      match inner with
      | Value.VTuple _ -> inner
      | atom -> Value.tuple [ (a, atom) ]
    in
    dedup
      (List.concat_map
         (fun row ->
           let rest = Value.project_away row [ a ] in
           List.map
             (fun inner -> Value.concat (as_row inner) rest)
             (Value.as_set (Value.field row a)))
         (rows cat input))
  | Plan.NestOp { attrs; into; input } ->
    (* Grouping is a breaker (all input must arrive before any group is
       complete), but the input still streams straight into the group
       tables — no materialized input list.  The grouping attributes come
       from the first row pushed, as before. *)
    let groups = VTbl.create 64 in
    let order = ref [] in
    let group_by = ref [] in
    let seen_first = ref false in
    push cat input (fun row ->
        if not !seen_first then begin
          seen_first := true;
          let all_fields = Value.field_names row in
          group_by := List.filter (fun f -> not (List.mem f attrs)) all_fields
        end;
        let k = Value.project row !group_by in
        let member = Value.project row attrs in
        match VTbl.find_opt groups k with
        | Some members -> members := member :: !members
        | None ->
          VTbl.add groups k (ref [ member ]);
          order := k :: !order);
    List.rev_map
      (fun k ->
        Value.concat k (Value.tuple [ (into, Value.set !(VTbl.find groups k)) ]))
      !order
  | Plan.DivideOp (a, b) ->
    (* Hash-based relational division: index the dividend, test each
       candidate quotient row against every divisor row by lookup. *)
    let xs = dedup (rows cat a) and ys = dedup (rows cat b) in
    (match xs, ys with
     | [], _ -> []
     | _, [] -> xs (* divisor schema unobservable; B = {} (cf. Eval) *)
     | x0 :: _, y0 :: _ ->
       let b_attrs = Value.field_names y0 in
       let a_attrs =
         List.filter (fun f -> not (List.mem f b_attrs)) (Value.field_names x0)
       in
       let pair_index = VTbl.create (tbl_size cat a) in
       List.iter
         (fun x ->
           M.incr c_hash_build;
           VTbl.replace pair_index x ())
         xs;
       let candidates = dedup (List.map (fun x -> Value.project x a_attrs) xs) in
       List.filter
         (fun q ->
           List.for_all
             (fun y ->
               M.incr c_hash_probe;
               VTbl.mem pair_index (Value.concat q y))
             ys)
         candidates)
  | Plan.Pnhl { attr; elem_key; row_key; into; mem_budget; left; right } ->
    exec_pnhl cat ~attr ~elem_key ~row_key ~into ~mem_budget ~left ~right
  | Plan.Assembly { cls; ref_attr; into; input } ->
    List.map
      (fun row ->
        let obj = Catalog.deref cat cls (Value.field row ref_attr) in
        Value.except row [ (into, obj) ])
      (rows cat input)
  | Plan.ParJoinOp { kind; xvar; yvar; keys; residual; partitions; left; right }
    ->
    let kx0, ky0 =
      match keys with
      | k :: _ -> k
      | [] -> exec_error "parallel join without equi keys"
    in
    let partitions = max 1 partitions in
    let kx0 = param1 cat ~var:xvar kx0 and ky0 = param1 cat ~var:yvar ky0 in
    let xparts = partition_push cat kx0 partitions left
    and yparts = partition_push cat ky0 partitions right in
    let xkey_s = key_fns_spawner cat xvar `Left keys
    and ykey_s = key_fns_spawner cat yvar `Right keys in
    let residual_s = residual_spawner cat xvar yvar residual in
    let build_hint = max 16 (tbl_size cat right / partitions) in
    let joined =
      Pool.run partitions
        (par_task "task:par_join" (fun b ->
             hash_join_keyed kind ~xkey:(xkey_s ()) ~ykey:(ykey_s ())
               ~residual:(residual_s ()) ~build_hint xparts.(b) yparts.(b)))
    in
    dedup (List.concat (Array.to_list joined))
  | Plan.ParNestjoinOp
      { xvar; yvar; keys; residual; body; attr; partitions; left; right } ->
    let kx0, ky0 =
      match keys with
      | k :: _ -> k
      | [] -> exec_error "parallel nestjoin without equi keys"
    in
    let partitions = max 1 partitions in
    let kx0 = param1 cat ~var:xvar kx0 and ky0 = param1 cat ~var:yvar ky0 in
    let xparts = partition_push cat kx0 partitions left
    and yparts = partition_push cat ky0 partitions right in
    let xkey_s = key_fns_spawner cat xvar `Left keys
    and ykey_s = key_fns_spawner cat yvar `Right keys in
    let residual_s = residual_spawner cat xvar yvar residual in
    let body_s = param2_spawner cat ~vars:(xvar, yvar) body in
    let build_hint = max 16 (tbl_size cat right / partitions) in
    (* Every left row is in exactly one partition, and all right rows with
       its key are in the same one, so its match group is complete there. *)
    let parts_out =
      Pool.run partitions
        (par_task "task:par_nestjoin" (fun b ->
             let xkey = xkey_s ()
             and ykey = ykey_s ()
             and residual = residual_s ()
             and body = body_s () in
             let ys_b = yparts.(b) in
             let tbl = KTbl.create build_hint in
             List.iter
               (fun y ->
                 M.incr c_hash_build;
                 KTbl.add tbl (ykey y) y)
               ys_b;
             List.map
               (fun x ->
                 M.incr c_hash_probe;
                 let ms =
                   List.filter (residual x) (KTbl.find_all tbl (xkey x))
                 in
                 let projected = List.map (fun y -> body x y) ms in
                 Value.concat x (Value.tuple [ (attr, Value.set projected) ]))
               xparts.(b)))
    in
    List.concat (Array.to_list parts_out)
  | Plan.ParPnhl { attr; elem_key; row_key; into; mem_budget; left; right } ->
    exec_par_pnhl cat ~attr ~elem_key ~row_key ~into ~mem_budget ~left ~right
  | Plan.ParFilter { var; pred; input } ->
    let xs = Array.of_list (rows cat input) in
    let pred_s = pred1_spawner cat ~var pred in
    let chunks = par_chunks (Array.length xs) in
    let outs =
      Pool.run (Array.length chunks)
        (par_task "task:par_filter" (fun c ->
             let pred = pred_s () in
             let lo, hi = chunks.(c) in
             let acc = ref [] in
             for i = hi - 1 downto lo do
               let row = xs.(i) in
               M.incr c_filter_eval;
               if pred row then acc := row :: !acc
             done;
             !acc))
    in
    List.concat (Array.to_list outs)
  | Plan.ParMapOp { var; body; input } ->
    let xs = Array.of_list (rows cat input) in
    let body_s = param1_spawner cat ~var body in
    let chunks = par_chunks (Array.length xs) in
    let outs =
      Pool.run (Array.length chunks)
        (par_task "task:par_map" (fun c ->
             let body = body_s () in
             let lo, hi = chunks.(c) in
             let acc = ref [] in
             for i = hi - 1 downto lo do
               acc := body xs.(i) :: !acc
             done;
             !acc))
    in
    dedup (List.concat (Array.to_list outs))
  | Plan.EvalOp e -> Value.as_set (Eval.run cat e)
  | Plan.Materialized rows -> rows

(* Dispatch through the collector when one is installed; the common case
   costs one flag-and-deref test per node, and nothing per tuple. *)
and rows cat p =
  match !collector with None -> execute cat p | Some c -> profiled c cat p

(* Mode dispatch for a node whose full row list is required.  Leaf-shaped
   nodes return an existing list for free from [exec_node]; collecting
   them through a push loop would only copy it.  Streamable non-leaf
   nodes run as one fused push loop ([gather]); breakers and
   materializing mode use the list-at-a-time implementations. *)
and execute cat p =
  if !pipeline_exec then
    match p with
    | Plan.Scan _ | Plan.EvalOp _ | Plan.Materialized _ | Plan.IndexScan _ ->
      exec_node cat p
    | _ when Plan.streams_output p -> gather cat p
    | _ -> exec_node cat p
  else exec_node cat p

(* Collect a fused chain's output into a list (the only materialization
   the chain performs).  The sink is a row vector pre-sized from the
   planner's cardinality estimate and listed once at the end — not a
   cons-accumulator reversed afterwards.  Calls [push_node]/[bpush_node]
   directly rather than [push]: the root node's profile sample comes from
   the [profiled] bracket around this call, not a streamed record. *)
and gather cat p =
  let vec = Batch.Vec.create (tbl_size cat p) in
  if !batch_exec then bpush_node cat p (Batch.Vec.push_batch vec)
  else push_node cat p (Batch.Vec.push vec);
  Batch.Vec.to_list vec

(* Feed [p]'s rows to [sink], fusing when the node can stream.  A fused
   node inside a collected run still records its output row count — with
   zero time/work/allocation, since the loop owner's exclusive figures
   cover the whole fused chain (see [Profile]). *)
and push cat p sink =
  if !pipeline_exec && Plan.streams_output p then
    if !batch_exec then bpush_stream cat p (Batch.iter sink)
    else (
      match !collector with
      | None -> push_node cat p sink
      | Some c ->
        let n = ref 0 in
        push_node cat p (fun v ->
            incr n;
            sink v);
        record_streamed c p !n)
  else List.iter sink (rows cat p)

(* Batched counterpart of [push] for a streamable node: run [bpush_node],
   recording the streamed row count when a collector is installed. *)
and bpush_stream cat p bsink =
  match !collector with
  | None -> bpush_node cat p bsink
  | Some c ->
    let n = ref 0 in
    bpush_node cat p (fun b ->
        n := !n + Batch.live b;
        bsink b);
    record_streamed c p !n

(* Feed [p]'s rows to a batch sink: fused edges stream batches straight
   through; breaker inputs materialize as a list and re-pack.  Only
   reached from batched pipelines (batch mode implies pipeline mode). *)
and bpush cat p bsink =
  if !pipeline_exec && !batch_exec && Plan.streams_output p then
    bpush_stream cat p bsink
  else begin
    let bld = Batch.builder bsink in
    List.iter (Batch.add bld) (rows cat p);
    Batch.flush bld
  end

and record_streamed c p n =
  let sample =
    {
      sample_plan = p;
      out_rows = n;
      wall_ns = 0;
      cpu_s = 0.0;
      incl_wall_ns = 0;
      incl_cpu_s = 0.0;
      work = [];
      minor_words = 0.0;
      major_words = 0.0;
    }
  in
  c.samples <- sample :: c.samples

(* Order-preserving dedup as a sink transformer: the streaming counterpart
   of [dedup], one membership test per pushed row. *)
and dedup_sink sink =
  let seen = VTbl.create 64 in
  fun v ->
    if not (VTbl.mem seen v) then begin
      VTbl.add seen v ();
      sink v
    end

(* Hash-partition a sub-plan's rows by key without forming the input list
   first; same ticks as the former list-based partitioning. *)
and partition_push cat keyf partitions plan =
  let parts = Array.make partitions [] in
  push cat plan (fun row ->
      M.incr c_par_partition_row;
      let b = bucket_of_hash (Value.hash (keyf row)) partitions in
      parts.(b) <- row :: parts.(b));
  M.incr ~n:partitions c_par_partition;
  Array.map List.rev parts

(* Streaming implementations.  Each case must emit exactly the rows (and
   tick exactly the counters, in the same per-row pattern) of the
   corresponding [exec_node] case — the agreement suite in
   test/test_pipeline.ml holds both modes to that contract.  Only called
   on nodes for which [Plan.streams_output] is true. *)
and push_node cat (p : Plan.t) (sink : Value.t -> unit) : unit =
  match p with
  | Plan.Scan name ->
    let rs = Catalog.rows cat name in
    M.incr ~n:(List.length rs) c_scan_row;
    List.iter sink rs
  | Plan.Filter { var; pred; input } ->
    let pred = pred1 cat ~var pred in
    push cat input (fun row ->
        M.incr c_filter_eval;
        if pred row then sink row)
  | Plan.IndexScan { index; var; lookup; residual; rename; _ } ->
    let ren = renamer rename in
    let matched = List.map ren (index_fetch cat (find_index cat index) lookup) in
    if Expr.is_true residual then List.iter sink matched
    else begin
      let pred = pred1 cat ~var residual in
      List.iter
        (fun row ->
          M.incr c_filter_eval;
          if pred row then sink row)
        matched
    end
  | Plan.IndexJoin { kind; xvar; yvar; index; keys; residual; rename; left; _ }
    ->
    let idx = find_index cat index in
    let ren = renamer rename in
    let xkey = key_fns cat xvar `Left (List.map (fun e -> (e, e)) keys) in
    let residual = residual_fn cat xvar yvar residual in
    let probe x = List.map ren (Catalog.index_lookup_eq cat idx (xkey x)) in
    let matches x = List.filter (residual x) (probe x) in
    let has_match x = List.exists (residual x) (probe x) in
    (match kind with
     | Expr.Inner ->
       let sink = dedup_sink sink in
       push cat left (fun x ->
           List.iter (fun y -> sink (Value.concat x y)) (matches x))
     | Expr.Semi -> push cat left (fun x -> if has_match x then sink x)
     | Expr.Anti -> push cat left (fun x -> if not (has_match x) then sink x)
     | Expr.LeftOuter _ -> exec_error "index join does not support outer joins")
  | Plan.MapOp { var; body; input } ->
    let body = param1 cat ~var body in
    let sink = dedup_sink sink in
    push cat input (fun row -> sink (body row))
  | Plan.ProjectOp (attrs, input) ->
    let sink = dedup_sink sink in
    push cat input (fun row -> sink (Value.project row attrs))
  | Plan.FlattenOp input ->
    let sink = dedup_sink sink in
    push cat input (fun row -> List.iter sink (Value.as_set row))
  | Plan.UnionOp (a, b) ->
    let sink = dedup_sink sink in
    push cat a sink;
    push cat b sink
  | Plan.InterOp (a, b) ->
    let tbl = VTbl.create (tbl_size cat b) in
    push cat b (fun v -> VTbl.replace tbl v ());
    push cat a (fun v -> if VTbl.mem tbl v then sink v)
  | Plan.DiffOp (a, b) ->
    let tbl = VTbl.create (tbl_size cat b) in
    push cat b (fun v -> VTbl.replace tbl v ());
    push cat a (fun v -> if not (VTbl.mem tbl v) then sink v)
  | Plan.ProductOp (a, b) ->
    let ys = rows cat b in
    let sink = dedup_sink sink in
    push cat a (fun x -> List.iter (fun y -> sink (Value.concat x y)) ys)
  | Plan.JoinOp { algo = Plan.Hash; kind; xvar; yvar; keys; residual; left; right }
    ->
    (match keys with
     | [] -> exec_error "hash/sort-merge join without equi keys"
     | _ :: _ -> ());
    let xkey = key_fns cat xvar `Left keys and ykey = key_fns cat yvar `Right keys in
    let residual = residual_fn cat xvar yvar residual in
    (* Build rows go straight into the table — no build-side list. *)
    let tbl = KTbl.create (tbl_size cat right) in
    push cat right (fun y ->
        M.incr c_hash_build;
        KTbl.add tbl (ykey y) y);
    let matches x =
      M.incr c_hash_probe;
      List.filter (residual x) (KTbl.find_all tbl (xkey x))
    in
    let has_match x =
      M.incr c_hash_probe;
      List.exists (residual x) (KTbl.find_all tbl (xkey x))
    in
    (match kind with
     | Expr.Inner ->
       let sink = dedup_sink sink in
       push cat left (fun x ->
           List.iter (fun y -> sink (Value.concat x y)) (matches x))
     | Expr.Semi -> push cat left (fun x -> if has_match x then sink x)
     | Expr.Anti -> push cat left (fun x -> if not (has_match x) then sink x)
     | Expr.LeftOuter pad ->
       let null_row = Value.tuple (List.map (fun a -> (a, Value.VNull)) pad) in
       let sink = dedup_sink sink in
       push cat left (fun x ->
           match matches x with
           | [] -> sink (Value.concat x null_row)
           | ms -> List.iter (fun y -> sink (Value.concat x y)) ms))
  | Plan.JoinOp
      { algo = Plan.Nested_loop; kind; xvar; yvar; keys; residual; left; right }
    ->
    let ys = rows cat right in
    let xkey = key_fns cat xvar `Left keys and ykey = key_fns cat yvar `Right keys in
    let residual = residual_fn cat xvar yvar residual in
    let full_pred x kx y =
      M.incr c_nl_pair;
      Key.equal kx (ykey y) && residual x y
    in
    (match kind with
     | Expr.Inner ->
       let sink = dedup_sink sink in
       push cat left (fun x ->
           let kx = xkey x in
           List.iter (fun y -> if full_pred x kx y then sink (Value.concat x y)) ys)
     | Expr.Semi ->
       push cat left (fun x -> if List.exists (full_pred x (xkey x)) ys then sink x)
     | Expr.Anti ->
       push cat left (fun x ->
           if not (List.exists (full_pred x (xkey x)) ys) then sink x)
     | Expr.LeftOuter pad ->
       let null_row = Value.tuple (List.map (fun a -> (a, Value.VNull)) pad) in
       let sink = dedup_sink sink in
       push cat left (fun x ->
           match List.filter (full_pred x (xkey x)) ys with
           | [] -> sink (Value.concat x null_row)
           | ms -> List.iter (fun y -> sink (Value.concat x y)) ms))
  | Plan.NestjoinOp
      {
        algo = (Plan.Hash | Plan.Nested_loop) as algo;
        xvar;
        yvar;
        keys;
        residual;
        body;
        attr;
        left;
        right;
      } ->
    let body = param2 cat ~vars:(xvar, yvar) body in
    let residual = residual_fn cat xvar yvar residual in
    let attach x ms =
      let projected = List.map (fun y -> body x y) ms in
      Value.concat x (Value.tuple [ (attr, Value.set projected) ])
    in
    let xkey = key_fns cat xvar `Left keys and ykey = key_fns cat yvar `Right keys in
    (match algo, keys with
     | Plan.Hash, _ :: _ ->
       let tbl = KTbl.create (tbl_size cat right) in
       push cat right (fun y ->
           M.incr c_hash_build;
           KTbl.add tbl (ykey y) y);
       push cat left (fun x ->
           M.incr c_hash_probe;
           let ms = List.filter (residual x) (KTbl.find_all tbl (xkey x)) in
           sink (attach x ms))
     | _ ->
       (* Hash without equi keys degrades to nested loops, exactly as the
          materializing implementation does. *)
       let ys = rows cat right in
       push cat left (fun x ->
           let kx = xkey x in
           let ms =
             List.filter
               (fun y ->
                 M.incr c_nl_pair;
                 Key.equal kx (ykey y) && residual x y)
               ys
           in
           sink (attach x ms)))
  | Plan.MemberJoin { kind; xvar; yvar; xset; elem_var; elem_key; ykey; left; right }
    ->
    let ykey = param1 cat ~var:yvar ykey in
    let xset = param1 cat ~var:xvar xset in
    let elem_key = param2 cat ~vars:(elem_var, xvar) elem_key in
    let tbl = VTbl.create (tbl_size cat right) in
    push cat right (fun y ->
        M.incr c_hash_build;
        VTbl.add tbl (ykey y) y);
    let matches x =
      List.concat_map
        (fun e ->
          M.incr c_hash_probe;
          VTbl.find_all tbl (elem_key e x))
        (Value.as_set (xset x))
    in
    let has_match x =
      List.exists
        (fun e ->
          M.incr c_hash_probe;
          VTbl.mem tbl (elem_key e x))
        (Value.as_set (xset x))
    in
    (match kind with
     | Plan.MSemi -> push cat left (fun x -> if has_match x then sink x)
     | Plan.MAnti -> push cat left (fun x -> if not (has_match x) then sink x)
     | Plan.MInner ->
       let sink = dedup_sink sink in
       push cat left (fun x -> List.iter (fun y -> sink (Value.concat x y)) (matches x))
     | Plan.MNest { body; attr } ->
       let body = param2 cat ~vars:(xvar, yvar) body in
       push cat left (fun x ->
           let ms = dedup (matches x) in
           let projected = List.map (fun y -> body x y) ms in
           sink (Value.concat x (Value.tuple [ (attr, Value.set projected) ]))))
  | Plan.RenameOp (pairs, input) ->
    push cat input (fun row ->
        sink
          (Value.tuple
             (List.map
                (fun (n, v) ->
                  match List.assoc_opt n pairs with
                  | Some n' -> (n', v)
                  | None -> (n, v))
                (Value.as_tuple row))))
  | Plan.UnnestOp (a, input) ->
    let as_row inner =
      match inner with
      | Value.VTuple _ -> inner
      | atom -> Value.tuple [ (a, atom) ]
    in
    let sink = dedup_sink sink in
    push cat input (fun row ->
        let rest = Value.project_away row [ a ] in
        List.iter
          (fun inner -> sink (Value.concat (as_row inner) rest))
          (Value.as_set (Value.field row a)))
  | Plan.Assembly { cls; ref_attr; into; input } ->
    push cat input (fun row ->
        let obj = Catalog.deref cat cls (Value.field row ref_attr) in
        sink (Value.except row [ (into, obj) ]))
  | Plan.ParFilter { var; pred; input } ->
    (* The input buffers into a chunk array (a pipeline breaker by
       necessity — chunks are claimed concurrently), but the chunk outputs
       stream to the consumer in order with no concatenated result list. *)
    let xs = Array.of_list (rows cat input) in
    let pred_s = pred1_spawner cat ~var pred in
    let chunks = par_chunks (Array.length xs) in
    let outs =
      Pool.run (Array.length chunks)
        (par_task "task:par_filter" (fun c ->
             let pred = pred_s () in
             let lo, hi = chunks.(c) in
             let acc = ref [] in
             for i = hi - 1 downto lo do
               let row = xs.(i) in
               M.incr c_filter_eval;
               if pred row then acc := row :: !acc
             done;
             !acc))
    in
    Array.iter (fun out -> List.iter sink out) outs
  | Plan.ParMapOp { var; body; input } ->
    let xs = Array.of_list (rows cat input) in
    let body_s = param1_spawner cat ~var body in
    let chunks = par_chunks (Array.length xs) in
    let outs =
      Pool.run (Array.length chunks)
        (par_task "task:par_map" (fun c ->
             let body = body_s () in
             let lo, hi = chunks.(c) in
             let acc = ref [] in
             for i = hi - 1 downto lo do
               acc := body xs.(i) :: !acc
             done;
             !acc))
    in
    let sink = dedup_sink sink in
    Array.iter (fun out -> List.iter sink out) outs
  | Plan.EvalOp e -> List.iter sink (Value.as_set (Eval.run cat e))
  | Plan.Materialized rs -> List.iter sink rs
  | p ->
    (* Pipeline breakers never reach here ([push] checks
       [Plan.streams_output] first); materialize defensively. *)
    List.iter sink (rows cat p)

(* Batched streaming implementations.  The contract is the same as
   [push_node]'s — emit exactly the rows, in exactly the order, ticking
   exactly the counter totals of the corresponding [exec_node] case — plus
   one batched refinement: filters and semi/anti probes narrow the
   incoming batch's selection vector instead of copying survivors, and
   producing operators build owned batches through [Batch.builder].
   Counters tick per batch ([M.incr ~n] is k single ticks), so totals
   match even though the tick pattern is coarser; on a mid-batch exception
   a batch-granular tick may overcount relative to row mode — error paths
   only, documented in DESIGN.md.  Only called on streamable nodes while
   [batch_exec] is on. *)
and bpush_node cat (p : Plan.t) (bsink : Batch.t -> unit) : unit =
  (* Batched counterpart of [dedup_sink] feeding an owned-batch builder:
     returns the per-row emitter and the final flush. *)
  let dedup_builder () =
    let seen = VTbl.create 64 in
    let bld = Batch.builder bsink in
    let emit v =
      if not (VTbl.mem seen v) then begin
        VTbl.add seen v ();
        Batch.add bld v
      end
    in
    (emit, fun () -> Batch.flush bld)
  in
  (* Batches narrowed to nothing die here rather than flowing on. *)
  let emit_live b = if Batch.live b > 0 then bsink b in
  match p with
  | Plan.Scan name ->
    (* Zero-copy: batches are windows into the catalog's cached row
       array; nothing per row is allocated at the source. *)
    let rs = Catalog.rows_array cat name in
    let n = Array.length rs in
    M.incr ~n c_scan_row;
    let bs = !Batch.size in
    let off = ref 0 in
    while !off < n do
      let len = min bs (n - !off) in
      bsink (Batch.view rs ~off:!off ~len);
      off := !off + len
    done
  | Plan.Filter { var; pred; input } ->
    if !compile_params then begin
      let vp = Compile.vectorize_pred cat ~var pred in
      bpush cat input (fun b ->
          M.incr ~n:(Batch.live b) c_filter_eval;
          Batch.keep_vpred vp b;
          emit_live b)
    end
    else
      bpush cat input (fun b ->
          M.incr ~n:(Batch.live b) c_filter_eval;
          Batch.keep_rows b (fun row -> Eval.run_pred cat [ (var, row) ] pred);
          emit_live b)
  | Plan.MapOp { var; body; input } ->
    let body =
      if !compile_params then (
        match Compile.expr1_rowmaker cat ~var body with
        | Some f -> f
        | None -> Compile.expr1 cat ~var body)
      else fun v -> Eval.eval cat [ (var, v) ] body
    in
    let emit, flush = dedup_builder () in
    bpush cat input (Batch.iter (fun row -> emit (body row)));
    flush ()
  | Plan.ProjectOp (attrs, input) ->
    let sorted = List.sort_uniq String.compare attrs in
    let proj =
      if List.length sorted = List.length attrs then fun row ->
        (* Sorted-merge projection; on a missing attribute re-project the
           row-mode way so the error message names the same field. *)
        (try Value.project_sorted row sorted
         with Value.Type_error _ -> Value.project row attrs)
      else fun row -> Value.project row attrs
    in
    let emit, flush = dedup_builder () in
    bpush cat input (Batch.iter (fun row -> emit (proj row)));
    flush ()
  | Plan.FlattenOp input ->
    let emit, flush = dedup_builder () in
    bpush cat input (Batch.iter (fun row -> List.iter emit (Value.as_set row)));
    flush ()
  | Plan.UnionOp (a, b) ->
    (* Both sides narrow through one shared dedup selection — no copy of
       the surviving rows on either side. *)
    let seen = VTbl.create 64 in
    let dedup_batch bt =
      Batch.keep_rows bt (fun v ->
          if VTbl.mem seen v then false
          else begin
            VTbl.add seen v ();
            true
          end);
      emit_live bt
    in
    bpush cat a dedup_batch;
    bpush cat b dedup_batch
  | Plan.InterOp (a, b) ->
    let tbl = VTbl.create (tbl_size cat b) in
    push cat b (fun v -> VTbl.replace tbl v ());
    bpush cat a (fun bt ->
        Batch.keep_rows bt (VTbl.mem tbl);
        emit_live bt)
  | Plan.DiffOp (a, b) ->
    let tbl = VTbl.create (tbl_size cat b) in
    push cat b (fun v -> VTbl.replace tbl v ());
    bpush cat a (fun bt ->
        Batch.keep_rows bt (fun v -> not (VTbl.mem tbl v));
        emit_live bt)
  | Plan.ProductOp (a, b) ->
    let ys = rows cat b in
    let emit, flush = dedup_builder () in
    bpush cat a
      (Batch.iter (fun x -> List.iter (fun y -> emit (Value.concat x y)) ys));
    flush ()
  | Plan.JoinOp { algo = Plan.Hash; kind; xvar; yvar; keys; residual; left; right }
    ->
    (match keys with
     | [] -> exec_error "hash/sort-merge join without equi keys"
     | _ :: _ -> ());
    let residual = residual_fn cat xvar yvar residual in
    let matches, has_match =
      match keys with
      | [ (kx, ky) ] ->
        (* Single equi key: hash on the key value itself — no one-element
           key array per row on either side.  [find_all] order (reverse
           insertion) is key-equality driven, so match lists are identical
           to the keyed-table path. *)
        let xkey = param1 cat ~var:xvar kx and ykey = param1 cat ~var:yvar ky in
        let tbl = VTbl.create (tbl_size cat right) in
        push cat right (fun y ->
            M.incr c_hash_build;
            VTbl.add tbl (ykey y) y);
        ( (fun x ->
            M.incr c_hash_probe;
            List.filter (residual x) (VTbl.find_all tbl (xkey x))),
          fun x ->
            M.incr c_hash_probe;
            List.exists (residual x) (VTbl.find_all tbl (xkey x)) )
      | _ ->
        let xkey = key_fns cat xvar `Left keys
        and ykey = key_fns cat yvar `Right keys in
        let tbl = KTbl.create (tbl_size cat right) in
        push cat right (fun y ->
            M.incr c_hash_build;
            KTbl.add tbl (ykey y) y);
        ( (fun x ->
            M.incr c_hash_probe;
            List.filter (residual x) (KTbl.find_all tbl (xkey x))),
          fun x ->
            M.incr c_hash_probe;
            List.exists (residual x) (KTbl.find_all tbl (xkey x)) )
    in
    (match kind with
     | Expr.Inner ->
       let emit, flush = dedup_builder () in
       bpush cat left
         (Batch.iter (fun x ->
              List.iter (fun y -> emit (Value.concat x y)) (matches x)));
       flush ()
     | Expr.Semi ->
       bpush cat left (fun b ->
           Batch.keep_rows b has_match;
           emit_live b)
     | Expr.Anti ->
       bpush cat left (fun b ->
           Batch.keep_rows b (fun x -> not (has_match x));
           emit_live b)
     | Expr.LeftOuter pad ->
       let null_row = Value.tuple (List.map (fun a -> (a, Value.VNull)) pad) in
       let emit, flush = dedup_builder () in
       bpush cat left
         (Batch.iter (fun x ->
              match matches x with
              | [] -> emit (Value.concat x null_row)
              | ms -> List.iter (fun y -> emit (Value.concat x y)) ms));
       flush ())
  | Plan.NestjoinOp
      {
        algo = Plan.Hash;
        keys = _ :: _ as keys;
        xvar;
        yvar;
        residual;
        body;
        attr;
        left;
        right;
      } ->
    let body = param2 cat ~vars:(xvar, yvar) body in
    let residual = residual_fn cat xvar yvar residual in
    let attach x ms =
      let projected = List.map (fun y -> body x y) ms in
      Value.concat x (Value.tuple [ (attr, Value.set projected) ])
    in
    let matches =
      match keys with
      | [ (kx, ky) ] ->
        let xkey = param1 cat ~var:xvar kx and ykey = param1 cat ~var:yvar ky in
        let tbl = VTbl.create (tbl_size cat right) in
        push cat right (fun y ->
            M.incr c_hash_build;
            VTbl.add tbl (ykey y) y);
        fun x ->
          M.incr c_hash_probe;
          List.filter (residual x) (VTbl.find_all tbl (xkey x))
      | _ ->
        let xkey = key_fns cat xvar `Left keys
        and ykey = key_fns cat yvar `Right keys in
        let tbl = KTbl.create (tbl_size cat right) in
        push cat right (fun y ->
            M.incr c_hash_build;
            KTbl.add tbl (ykey y) y);
        fun x ->
          M.incr c_hash_probe;
          List.filter (residual x) (KTbl.find_all tbl (xkey x))
    in
    let bld = Batch.builder bsink in
    bpush cat left (Batch.iter (fun x -> Batch.add bld (attach x (matches x))));
    Batch.flush bld
  | Plan.RenameOp (pairs, input) ->
    let ren row =
      Value.tuple
        (List.map
           (fun (n, v) ->
             match List.assoc_opt n pairs with
             | Some n' -> (n', v)
             | None -> (n, v))
           (Value.as_tuple row))
    in
    let bld = Batch.builder bsink in
    bpush cat input (Batch.iter (fun row -> Batch.add bld (ren row)));
    Batch.flush bld
  | Plan.ParFilter { var; pred; input } ->
    (* Morsel-over-batch: buffer the input's batches (the breaker the
       concurrent claim requires), filter each batch as one pool task,
       then stream the narrowed batches onward in order. *)
    let buf = ref [] in
    bpush cat input (fun b -> buf := b :: !buf);
    let batches = Array.of_list (List.rev !buf) in
    let nb = Array.length batches in
    if nb > 0 then begin
      if !compile_params && Compile.vectorizable ~var pred then begin
        (* The kernel closes over no per-instance slot buffer
           ([Compile.vectorizable]), so every task shares it. *)
        let vp = Compile.vectorize_pred cat ~var pred in
        ignore
          (Pool.run nb
             (par_task "task:par_filter" (fun i ->
                  let b = batches.(i) in
                  M.incr ~n:(Batch.live b) c_filter_eval;
                  Batch.keep_vpred vp b)))
      end
      else begin
        let pred_s = pred1_spawner cat ~var pred in
        ignore
          (Pool.run nb
             (par_task "task:par_filter" (fun i ->
                  let pred = pred_s () in
                  let b = batches.(i) in
                  M.incr ~n:(Batch.live b) c_filter_eval;
                  Batch.keep_rows b pred)))
      end;
      Array.iter emit_live batches
    end
  | Plan.ParMapOp { var; body; input } ->
    let buf = ref [] in
    bpush cat input (fun b -> buf := b :: !buf);
    let batches = Array.of_list (List.rev !buf) in
    let nb = Array.length batches in
    if nb > 0 then begin
      let body_s = param1_spawner cat ~var body in
      let outs =
        Pool.run nb
          (par_task "task:par_map" (fun i ->
               let body = body_s () in
               let b = batches.(i) in
               let out = Array.make (Batch.live b) Value.VNull in
               let j = ref 0 in
               Batch.iter
                 (fun row ->
                   out.(!j) <- body row;
                   incr j)
                 b;
               out))
      in
      let emit, flush = dedup_builder () in
      Array.iter (fun out -> Array.iter emit out) outs;
      flush ()
    end
  | p ->
    (* No native batched form (index paths, member joins, nested-loop
       joins, unnest, assembly, leaves): run the row-at-a-time emitter
       into a builder.  Its fused inputs still stream batches — [push]
       re-routes through this layer while batch mode is on. *)
    let bld = Batch.builder bsink in
    push_node cat p (Batch.add bld);
    Batch.flush bld

and profiled c cat p =
  if Span.tracing () then
    Span.with_span ("op:" ^ Plan.node_label p) (fun () -> profiled_run c cat p)
  else profiled_run c cat p

and profiled_run c cat p =
  let snap0 = M.counter_snapshot () in
  let minor0, major0 = alloc_words () in
  let cpu0 = Clock.cpu_seconds () in
  let t0 = Clock.now_ns () in
  let fr =
    {
      f_child_wall = 0;
      f_child_cpu = 0.0;
      f_child_work = [];
      f_child_minor = 0.0;
      f_child_major = 0.0;
    }
  in
  c.stack <- fr :: c.stack;
  let pop () =
    match c.stack with
    | top :: rest when top == fr -> c.stack <- rest
    | other -> c.stack <- (match other with _ :: r -> r | [] -> [])
  in
  match execute cat p with
  | exception e ->
    pop ();
    raise e
  | result ->
    let incl_wall = Clock.elapsed_ns t0 in
    let incl_cpu = Clock.cpu_seconds () -. cpu0 in
    let minor1, major1 = alloc_words () in
    let incl_minor = minor1 -. minor0 in
    let incl_major = major1 -. major0 in
    let incl_work = sub_work (M.counter_snapshot ()) snap0 in
    pop ();
    (match c.stack with
     | parent :: _ ->
       parent.f_child_wall <- parent.f_child_wall + incl_wall;
       parent.f_child_cpu <- parent.f_child_cpu +. incl_cpu;
       parent.f_child_work <- add_work parent.f_child_work incl_work;
       parent.f_child_minor <- parent.f_child_minor +. incl_minor;
       parent.f_child_major <- parent.f_child_major +. incl_major
     | [] -> ());
    let sample =
      {
        sample_plan = p;
        out_rows = List.length result;
        wall_ns = incl_wall - fr.f_child_wall;
        cpu_s = incl_cpu -. fr.f_child_cpu;
        incl_wall_ns = incl_wall;
        incl_cpu_s = incl_cpu;
        work = sub_work incl_work fr.f_child_work;
        minor_words = incl_minor -. fr.f_child_minor;
        major_words = incl_major -. fr.f_child_major;
      }
    in
    c.samples <- sample :: c.samples;
    Span.add_attr "rows" (Span.AInt sample.out_rows);
    result

(* Hash-set dedup over the memoized [Value.hash], preserving the first
   occurrence of each element (the caller canonicalizes at the top via
   [Value.set]); replaces the former [List.sort_uniq Value.compare], whose
   deep polymorphic comparisons dominated on wide rows. *)
and dedup vs =
  match vs with
  | [] | [ _ ] -> vs
  | _ ->
    let seen = VTbl.create 64 in
    List.filter
      (fun v ->
        if VTbl.mem seen v then false
        else begin
          VTbl.add seen v ();
          true
        end)
      vs

and exec_join cat algo kind xvar yvar keys residual left right =
  let xs = rows cat left and ys = rows cat right in
  match algo, keys with
  | Plan.Hash, _ :: _ ->
    hash_join cat kind xvar yvar keys residual ~build_hint:(tbl_size cat right)
      xs ys
  | Plan.Sort_merge, (kx, ky) :: _ ->
    (match kind with
     | Expr.Inner -> sort_merge_join cat xvar yvar (kx, ky) residual keys xs ys
     | _ -> exec_error "sort-merge supports only inner joins")
  | (Plan.Hash | Plan.Sort_merge), [] ->
    exec_error "hash/sort-merge join without equi keys"
  | Plan.Nested_loop, _ ->
    nested_loop_join cat kind xvar yvar keys residual xs ys

and nested_loop_join cat kind xvar yvar keys residual xs ys =
  let xkey = key_fns cat xvar `Left keys and ykey = key_fns cat yvar `Right keys in
  let residual = residual_fn cat xvar yvar residual in
  (* The left key is extracted once per left tuple, not once per pair. *)
  let full_pred x kx y =
    M.incr c_nl_pair;
    Key.equal kx (ykey y) && residual x y
  in
  match kind with
  | Expr.Inner ->
    dedup
      (List.concat_map
         (fun x ->
           let kx = xkey x in
           List.filter_map
             (fun y -> if full_pred x kx y then Some (Value.concat x y) else None)
             ys)
         xs)
  | Expr.Semi ->
    List.filter (fun x -> List.exists (full_pred x (xkey x)) ys) xs
  | Expr.Anti ->
    List.filter (fun x -> not (List.exists (full_pred x (xkey x)) ys)) xs
  | Expr.LeftOuter pad ->
    let null_row = Value.tuple (List.map (fun a -> (a, Value.VNull)) pad) in
    dedup
      (List.concat_map
         (fun x ->
           match List.filter (full_pred x (xkey x)) ys with
           | [] -> [ Value.concat x null_row ]
           | ms -> List.map (Value.concat x) ms)
         xs)

and hash_join cat kind xvar yvar keys residual ~build_hint xs ys =
  let xkey = key_fns cat xvar `Left keys and ykey = key_fns cat yvar `Right keys in
  let residual = residual_fn cat xvar yvar residual in
  hash_join_keyed kind ~xkey ~ykey ~residual ~build_hint xs ys

(* [build_hint] is a capacity estimate for the build table (from the
   planner's [Cost.rows_out], never a [List.length] pass over the build
   rows); it cannot affect results, only rehash count. *)
and hash_join_keyed ?(build_hint = 16) kind ~xkey ~ykey ~residual xs ys =
  let tbl = KTbl.create (max 16 build_hint) in
  List.iter
    (fun y ->
      M.incr c_hash_build;
      KTbl.add tbl (ykey y) y)
    ys;
  let matches x =
    M.incr c_hash_probe;
    List.filter (residual x) (KTbl.find_all tbl (xkey x))
  in
  (* Semi/anti probes stop at the first candidate that passes the residual
     instead of materializing (and residual-testing) the full match list. *)
  let has_match x =
    M.incr c_hash_probe;
    List.exists (residual x) (KTbl.find_all tbl (xkey x))
  in
  match kind with
  | Expr.Inner ->
    dedup (List.concat_map (fun x -> List.map (Value.concat x) (matches x)) xs)
  | Expr.Semi -> List.filter has_match xs
  | Expr.Anti -> List.filter (fun x -> not (has_match x)) xs
  | Expr.LeftOuter pad ->
    let null_row = Value.tuple (List.map (fun a -> (a, Value.VNull)) pad) in
    dedup
      (List.concat_map
         (fun x ->
           match matches x with
           | [] -> [ Value.concat x null_row ]
           | ms -> List.map (Value.concat x) ms)
         xs)

(* Grace partitioning with real spills.  The right (build) side dictates
   the partition count, ceil(|ys| / mem_budget); a single partition means
   the build fits and the pair joins in memory directly.  Otherwise BOTH
   inputs are partitioned on the hash of the first key into one spill file
   per side per partition, and partition pairs are read back and joined one
   at a time — only one pair is ever resident.  A partition whose build
   side still exceeds twice the budget (key skew defeated the hash split)
   is recursively repartitioned with a depth-salted hash; recursion stops
   when splitting makes no progress (every row carries the same key hash)
   or at a fixed depth, where the in-memory join is the best remaining
   option.  The 2x slack mirrors classic Grace practice: hash partitions
   of a uniform key spread around the budget, and re-spilling every
   slightly-oversized partition would cost more I/O than the marginally
   larger build table.

   Tick discipline: "grace_partition_row" per row per partitioning pass
   (and once per input row when the build fits — the pre-spill executor's
   counts), "grace_partition" per partition, spill counters per file/row.
   At depth 0 the bucket function matches the pre-spill executor exactly,
   so partition assignment — and therefore the result — is unchanged. *)
and grace_partitioned kind ~kx0 ~ky0 ~xkey ~ykey ~residual ~build_hint
    ~mem_budget ~depth xs ys nys out =
  let partitions = max 1 ((nys + mem_budget - 1) / mem_budget) in
  if partitions = 1 || depth > 8 then begin
    M.incr ~n:(List.length xs + nys) c_grace_partition_row;
    M.incr c_grace_partition;
    let joined = hash_join_keyed kind ~xkey ~ykey ~residual ~build_hint xs ys in
    out := List.rev_append joined !out
  end
  else begin
    let bucket k row =
      M.incr c_grace_partition_row;
      bucket_of_hash (Value.hash (k row) lxor (depth * 0x9e3779b1)) partitions
    in
    let spill_side key rows_ =
      let sps =
        Array.init partitions (fun _ ->
            Rowcodec.spill_create ~prefix:"njq-grace" ())
      in
      M.incr ~n:partitions c_spill_part;
      List.iter (fun row -> spill_row sps.(bucket key row) row) rows_;
      sps
    in
    let xsp = spill_side kx0 xs in
    Fun.protect ~finally:(fun () -> Array.iter Rowcodec.spill_remove xsp)
    @@ fun () ->
    let ysp = spill_side ky0 ys in
    Fun.protect ~finally:(fun () -> Array.iter Rowcodec.spill_remove ysp)
    @@ fun () ->
    M.incr ~n:partitions c_grace_partition;
    for b = 0 to partitions - 1 do
      (* Anti joins must also emit left rows whose partition has no right
         rows at all, so every partition pair is processed. *)
      let nys_b = Rowcodec.spill_rows ysp.(b) in
      let pxs = Rowcodec.spill_read xsp.(b) in
      let pys = Rowcodec.spill_read ysp.(b) in
      (* The pair's bytes are resident now; release the disk space before
         joining (or recursing, which spills afresh). *)
      Rowcodec.spill_remove xsp.(b);
      Rowcodec.spill_remove ysp.(b);
      if nys_b > 2 * mem_budget && nys_b < nys then
        grace_partitioned kind ~kx0 ~ky0 ~xkey ~ykey ~residual ~build_hint
          ~mem_budget ~depth:(depth + 1) pxs pys nys_b out
      else begin
        let joined =
          hash_join_keyed kind ~xkey ~ykey ~residual ~build_hint pxs pys
        in
        out := List.rev_append joined !out
      end
    done
  end

and sort_merge_join cat xvar yvar (kx, ky) residual all_keys xs ys =
  (* Sort both inputs on the first key; equal-key runs are then joined,
     checking the remaining keys and residual per pair. *)
  let kxf = param1 cat ~var:xvar kx and kyf = param1 cat ~var:yvar ky in
  let rest_keys = List.tl all_keys in
  let rxkey = key_fns cat xvar `Left rest_keys
  and rykey = key_fns cat yvar `Right rest_keys in
  let residual = residual_fn cat xvar yvar residual in
  let cmp (a, _) (b, _) =
    M.incr c_sm_cmp;
    Value.compare a b
  in
  (* [sort_pairs] goes external past the engine memory budget; either way
     the permutation is the stable in-memory one. *)
  let xs = sort_pairs cmp (List.map (fun row -> (kxf row, row)) xs) in
  let ys = sort_pairs cmp (List.map (fun row -> (kyf row, row)) ys) in
  let pair_ok x y = Key.equal (rxkey x) (rykey y) && residual x y in
  let rec run_of key acc = function
    | (k, v) :: rest when Value.equal k key -> run_of key (v :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  let rec merge xs ys acc =
    match xs, ys with
    | [], _ | _, [] -> acc
    | (kx0, _) :: _, (ky0, _) :: _ ->
      M.incr c_sm_cmp;
      let c = Value.compare kx0 ky0 in
      if c < 0 then merge (snd (run_of kx0 [] xs)) ys acc
      else if c > 0 then merge xs (snd (run_of ky0 [] ys)) acc
      else
        let xrun, xs' = run_of kx0 [] xs in
        let yrun, ys' = run_of ky0 [] ys in
        let acc =
          List.fold_left
            (fun acc x ->
              List.fold_left
                (fun acc y ->
                  if pair_ok x y then Value.concat x y :: acc else acc)
                acc yrun)
            acc xrun
        in
        merge xs' ys' acc
  in
  dedup (merge xs ys [])

and exec_nestjoin cat algo xvar yvar keys residual body attr left right =
  let xs = rows cat left and ys = rows cat right in
  let body = param2 cat ~vars:(xvar, yvar) body in
  let residual = residual_fn cat xvar yvar residual in
  let attach x ms =
    let projected = List.map (fun y -> body x y) ms in
    Value.concat x (Value.tuple [ (attr, Value.set projected) ])
  in
  match algo, keys with
  | Plan.Sort_merge, (kx, ky) :: rest_keys ->
    (* Adapted sort-merge join (Section 6.1): sort both inputs on the first
       key and pair each left run with the matching right run; dangling
       left tuples get the empty group. *)
    let kxf = param1 cat ~var:xvar kx and kyf = param1 cat ~var:yvar ky in
    let rxkey = key_fns cat xvar `Left rest_keys
    and rykey = key_fns cat yvar `Right rest_keys in
    let cmp (a, _) (b, _) =
      M.incr c_sm_cmp;
      Value.compare a b
    in
    let xs = sort_pairs cmp (List.map (fun row -> (kxf row, row)) xs) in
    let ys = sort_pairs cmp (List.map (fun row -> (kyf row, row)) ys) in
    let pair_ok x y = Key.equal (rxkey x) (rykey y) && residual x y in
    let rec run_of key acc = function
      | (k, v) :: rest when Value.equal k key -> run_of key (v :: acc) rest
      | rest -> (List.rev acc, rest)
    in
    let rec merge xs ys acc =
      match xs, ys with
      | [], _ -> List.rev acc
      | (_, x) :: xs', [] -> merge xs' [] (attach x [] :: acc)
      | (kx0, _) :: _, (ky0, _) :: _ ->
        M.incr c_sm_cmp;
        let c = Value.compare kx0 ky0 in
        if c < 0 then
          let xrun, xs' = run_of kx0 [] xs in
          merge xs' ys (List.rev_append (List.map (fun x -> attach x []) xrun) acc)
        else if c > 0 then
          let _, ys' = run_of ky0 [] ys in
          merge xs ys' acc
        else
          let xrun, xs' = run_of kx0 [] xs in
          let yrun, ys' = run_of ky0 [] ys in
          let acc =
            List.fold_left
              (fun acc x -> attach x (List.filter (pair_ok x) yrun) :: acc)
              acc xrun
          in
          merge xs' ys' acc
    in
    merge xs ys []
  | Plan.Sort_merge, [] -> exec_error "sort-merge nestjoin without equi keys"
  | Plan.Hash, _ :: _ ->
    let xkey = key_fns cat xvar `Left keys and ykey = key_fns cat yvar `Right keys in
    let tbl = KTbl.create (tbl_size cat right) in
    List.iter
      (fun y ->
        M.incr c_hash_build;
        KTbl.add tbl (ykey y) y)
      ys;
    List.map
      (fun x ->
        M.incr c_hash_probe;
        let ms = List.filter (residual x) (KTbl.find_all tbl (xkey x)) in
        attach x ms)
      xs
  | _ ->
    let xkey = key_fns cat xvar `Left keys and ykey = key_fns cat yvar `Right keys in
    List.map
      (fun x ->
        let kx = xkey x in
        let ms =
          List.filter
            (fun y ->
              M.incr c_nl_pair;
              Key.equal kx (ykey y) && residual x y)
            ys
        in
        attach x ms)
      xs

(* The Partitioned Nested-Hashed-Loops algorithm of [DeLa92]: the flat base
   table (right operand) is the build table; it is split into partitions of
   at most [mem_budget] rows (simulating the segments that fit in main
   memory).  For each partition, a hash table on the row key is built and
   every left row's set-valued attribute elements are probed against it,
   accumulating partial result sets per left row, which are merged across
   partitions.  Left rows with empty attribute sets survive with an empty
   result — unlike the unnest-join-nest pipeline, which loses them. *)
and exec_pnhl cat ~attr ~elem_key ~row_key ~into ~mem_budget ~left ~right =
  if mem_budget <= 0 then exec_error "pnhl: memory budget must be positive";
  let xs = rows cat left and ys = rows cat right in
  let row_key = param1 cat ~var:"row" row_key in
  let elem_key = param1 cat ~var:"elem" elem_key in
  let xs = Array.of_list xs in
  let partial = Array.make (Array.length xs) [] in
  let seg_hint = tbl_size ~cap:mem_budget cat right in
  let probe_segment segment =
    M.incr c_pnhl_partition;
    let tbl = VTbl.create seg_hint in
    List.iter
      (fun y ->
        M.incr c_pnhl_build;
        VTbl.add tbl (row_key y) y)
      segment;
    Array.iteri
      (fun i x ->
        let elems = Value.as_set (Value.field x attr) in
        List.iter
          (fun e ->
            M.incr c_pnhl_probe;
            partial.(i) <- VTbl.find_all tbl (elem_key e) @ partial.(i))
          elems)
      xs
  in
  (* A build table that fits is one resident segment; past the budget, the
     segments become spill files consumed one at a time — the segment
     boundaries (contiguous [mem_budget]-row ranges) and therefore all
     build/probe work are identical either way. *)
  (if ys = [] then ()
   else if List.length ys <= mem_budget then probe_segment ys
   else begin
     let spills = spill_segments ~mem_budget ys in
     Fun.protect
       ~finally:(fun () -> Array.iter Rowcodec.spill_remove spills)
       (fun () ->
         Array.iter
           (fun sp ->
             let segment = Rowcodec.spill_read sp in
             Rowcodec.spill_remove sp;
             probe_segment segment)
           spills)
   end);
  Array.to_list
    (Array.mapi
       (fun i x -> Value.except x [ (into, Value.set partial.(i)) ])
       xs)

(* Parallel PNHL: the algorithm's segments are independent — each builds
   its own hash table and probes every left row against it — so they run
   as pool tasks, one partial-match array per segment, merged in segment
   order afterwards.  Per-segment work (builds, probes) is exactly the
   sequential loop's, so counter totals match [exec_pnhl] on the same
   budget; result rows canonicalize through [Value.set] per left row. *)
and exec_par_pnhl cat ~attr ~elem_key ~row_key ~into ~mem_budget ~left ~right =
  if mem_budget <= 0 then exec_error "pnhl: memory budget must be positive";
  let xs = rows cat left and ys = rows cat right in
  let row_key_s = param1_spawner cat ~var:"row" row_key in
  let elem_key_s = param1_spawner cat ~var:"elem" elem_key in
  let xs = Array.of_list xs in
  let seg_hint = tbl_size ~cap:mem_budget cat right in
  let run_tasks nsegs segment_of =
    Pool.run nsegs
      (par_task "task:par_pnhl" (fun s ->
           let row_key = row_key_s () and elem_key = elem_key_s () in
           M.incr c_pnhl_partition;
           let segment = segment_of s in
           let tbl = VTbl.create seg_hint in
           List.iter
             (fun y ->
               M.incr c_pnhl_build;
               VTbl.add tbl (row_key y) y)
             segment;
           let partial = Array.make (Array.length xs) [] in
           Array.iteri
             (fun i x ->
               let elems = Value.as_set (Value.field x attr) in
               List.iter
                 (fun e ->
                   M.incr c_pnhl_probe;
                   partial.(i) <- VTbl.find_all tbl (elem_key e) @ partial.(i))
                 elems)
             xs;
           partial))
  in
  (* Segments are spilled sequentially on the coordinating domain (spill
     counters cannot depend on the pool size); each pool task then reads
     back — and unlinks — its own file, so concurrent tasks never share a
     decoder.  Segment boundaries match the sequential executor's, keeping
     counter totals budget-for-budget identical to [exec_pnhl]. *)
  let partials =
    if ys = [] then [||]
    else if List.length ys <= mem_budget then run_tasks 1 (fun _ -> ys)
    else begin
      let spills = spill_segments ~mem_budget ys in
      Fun.protect
        ~finally:(fun () -> Array.iter Rowcodec.spill_remove spills)
        (fun () ->
          run_tasks (Array.length spills) (fun s ->
              let segment = Rowcodec.spill_read spills.(s) in
              Rowcodec.spill_remove spills.(s);
              segment))
    end
  in
  Array.to_list
    (Array.mapi
       (fun i x ->
         let ms =
           Array.fold_left (fun acc partial -> partial.(i) @ acc) [] partials
         in
         Value.except x [ (into, Value.set ms) ])
       xs)

(* Execute a plan, returning its result as a canonical set value. *)
let run cat p = Value.set (rows cat p)

(* Run [f] with a fresh collector installed and return its result together
   with the recorded samples in completion (post-order) order.  Collectors
   nest: the previous one is restored afterwards and does not observe the
   inner run. *)
let collect f =
  let c = { samples = []; stack = [] } in
  let saved = !collector in
  collector := Some c;
  let result = Fun.protect ~finally:(fun () -> collector := saved) (fun () -> f ()) in
  (result, List.rev c.samples)
