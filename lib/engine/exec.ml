(* Plan execution.

   The engine's contribution is the set-oriented organization of the
   iteration: hash tables for equi-joins, semijoins, antijoins and
   nestjoins, a sort-merge alternative, the PNHL algorithm for set-valued
   attribute materialization, and assembly for pointer dereferencing.

   Parameter expressions (join keys, filter predicates, residuals, map and
   nestjoin bodies) are compiled once per operator into closures
   ([Njq_adl.Compile]) before iterating, so no per-tuple AST dispatch or
   environment allocation remains in the loops; flipping [compile_params]
   reverts to per-tuple reference evaluation for measurement.  Set results
   are deduplicated with a hash set over the memoized [Value.hash] instead
   of a full sort.

   Work counters (see [Njq_adl.Counters]): "scan_row", "filter_eval",
   "hash_build", "hash_probe", "nl_pair", "sm_cmp", "pnhl_partition",
   "pnhl_build", "pnhl_probe", plus "oid_lookup" from [Catalog.deref]. *)

open Njq_adl

exception Exec_error of string

let exec_error fmt = Fmt.kstr (fun s -> raise (Exec_error s)) fmt

module VTbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal

  (* Full-depth structural hash, memoized on set nodes; consistent with
     [Value.equal] because values are canonical. *)
  let hash = Value.hash
end)

(* Ordered composite key for multi-attribute equi joins: one slot per key
   pair, compared and hashed positionally.  Unlike the former [Value.VSet]
   encoding, key identity cannot depend on canonical set ordering or on the
   order in which attribute values happen to be evaluated. *)
module Key = struct
  type t = Value.t array

  let equal a b =
    Array.length a = Array.length b
    &&
    let rec go i = i < 0 || (Value.equal a.(i) b.(i) && go (i - 1)) in
    go (Array.length a - 1)

  let hash k =
    Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) (Array.length k) k
end

module KTbl = Hashtbl.Make (Key)

(* Parameter-expression mode: [true] (default) compiles each operator's
   parameter expressions once into closures; [false] falls back to
   per-tuple reference evaluation.  The bench harness flips the flag to
   measure the compiled layer's win on identical plans. *)
let compile_params = ref true

let param1 cat ~var e =
  if !compile_params then Compile.expr1 cat ~var e
  else fun v -> Eval.eval cat [ (var, v) ] e

let pred1 cat ~var e =
  if !compile_params then Compile.pred1 cat ~var e
  else fun v -> Eval.run_pred cat [ (var, v) ] e

let param2 cat ~vars:((a, b) as vars) e =
  if !compile_params then Compile.expr2 cat ~vars e
  else fun va vb -> Eval.eval cat [ (a, va); (b, vb) ] e

let pred2 cat ~vars:((a, b) as vars) e =
  if !compile_params then Compile.pred2 cat ~vars e
  else fun va vb -> Eval.run_pred cat [ (a, va); (b, vb) ] e

(* Compiled extractor for one side of the equi-join keys. *)
let key_fns cat var side keys =
  let fns =
    Array.of_list
      (List.map
         (fun (kx, ky) ->
           param1 cat ~var (match side with `Left -> kx | `Right -> ky))
         keys)
  in
  fun row -> Array.map (fun f -> f row) fns

let residual_fn cat xvar yvar residual =
  if Expr.is_true residual then fun _ _ -> true
  else pred2 cat ~vars:(xvar, yvar) residual

let rec rows (cat : Catalog.t) (p : Plan.t) : Value.t list =
  match p with
  | Plan.Scan name ->
    let rs = Catalog.rows cat name in
    Counters.tick ~n:(List.length rs) "scan_row";
    rs
  | Plan.Filter { var; pred; input } ->
    let pred = pred1 cat ~var pred in
    List.filter
      (fun row ->
        Counters.tick "filter_eval";
        pred row)
      (rows cat input)
  | Plan.MapOp { var; body; input } ->
    let body = param1 cat ~var body in
    dedup (List.map body (rows cat input))
  | Plan.ProjectOp (attrs, input) ->
    dedup (List.map (fun row -> Value.project row attrs) (rows cat input))
  | Plan.FlattenOp input ->
    dedup (List.concat_map Value.as_set (rows cat input))
  | Plan.UnionOp (a, b) -> dedup (rows cat a @ rows cat b)
  | Plan.InterOp (a, b) ->
    let tbl = VTbl.create 64 in
    List.iter (fun v -> VTbl.replace tbl v ()) (rows cat b);
    List.filter (VTbl.mem tbl) (rows cat a)
  | Plan.DiffOp (a, b) ->
    let tbl = VTbl.create 64 in
    List.iter (fun v -> VTbl.replace tbl v ()) (rows cat b);
    List.filter (fun v -> not (VTbl.mem tbl v)) (rows cat a)
  | Plan.ProductOp (a, b) ->
    let ys = rows cat b in
    dedup
      (List.concat_map
         (fun x -> List.map (fun y -> Value.concat x y) ys)
         (rows cat a))
  | Plan.JoinOp { algo; kind; xvar; yvar; keys; residual; left; right } ->
    exec_join cat algo kind xvar yvar keys residual left right
  | Plan.NestjoinOp { algo; xvar; yvar; keys; residual; body; attr; left; right } ->
    exec_nestjoin cat algo xvar yvar keys residual body attr left right
  | Plan.MemberJoin { kind; xvar; yvar; xset; elem_var; elem_key; ykey; left; right }
    ->
    let xs = rows cat left and ys = rows cat right in
    let ykey = param1 cat ~var:yvar ykey in
    let xset = param1 cat ~var:xvar xset in
    let elem_key = param2 cat ~vars:(elem_var, xvar) elem_key in
    let tbl = VTbl.create (max 16 (List.length ys)) in
    List.iter
      (fun y ->
        Counters.tick "hash_build";
        VTbl.add tbl (ykey y) y)
      ys;
    let matches x =
      List.concat_map
        (fun e ->
          Counters.tick "hash_probe";
          VTbl.find_all tbl (elem_key e x))
        (Value.as_set (xset x))
    in
    (* Semi/anti probes stop at the first matching element instead of
       materializing every match; only the probes performed are ticked. *)
    let has_match x =
      List.exists
        (fun e ->
          Counters.tick "hash_probe";
          VTbl.mem tbl (elem_key e x))
        (Value.as_set (xset x))
    in
    (match kind with
     | Plan.MSemi -> List.filter has_match xs
     | Plan.MAnti -> List.filter (fun x -> not (has_match x)) xs
     | Plan.MInner ->
       dedup (List.concat_map (fun x -> List.map (Value.concat x) (matches x)) xs)
     | Plan.MNest { body; attr } ->
       let body = param2 cat ~vars:(xvar, yvar) body in
       List.map
         (fun x ->
           let ms = dedup (matches x) in
           let projected = List.map (fun y -> body x y) ms in
           Value.concat x (Value.tuple [ (attr, Value.set projected) ]))
         xs)
  | Plan.GraceJoin { kind; xvar; yvar; keys; residual; mem_budget; left; right }
    ->
    if mem_budget <= 0 then exec_error "grace join: memory budget must be positive";
    (match kind with
     | Expr.LeftOuter _ -> exec_error "grace join does not support outer joins"
     | _ -> ());
    let xs = rows cat left and ys = rows cat right in
    let partitions =
      max 1 ((List.length ys + mem_budget - 1) / mem_budget)
    in
    (* Partition both inputs on the hash of the first key; rows of the same
       key land in the same partition pair, so each pair joins
       independently. *)
    let kx0, ky0 =
      match keys with
      | k :: _ -> k
      | [] -> exec_error "grace join without equi keys"
    in
    let kx0 = param1 cat ~var:xvar kx0 and ky0 = param1 cat ~var:yvar ky0 in
    let bucket k row =
      Counters.tick "grace_partition_row";
      Value.hash (k row) mod partitions
    in
    let xparts = Array.make partitions [] and yparts = Array.make partitions [] in
    List.iter
      (fun x ->
        let b = bucket kx0 x in
        xparts.(b) <- x :: xparts.(b))
      xs;
    List.iter
      (fun y ->
        let b = bucket ky0 y in
        yparts.(b) <- y :: yparts.(b))
      ys;
    Counters.tick ~n:partitions "grace_partition";
    (* Compile keys and residual once; every partition pair reuses them. *)
    let xkey = key_fns cat xvar `Left keys and ykey = key_fns cat yvar `Right keys in
    let residual = residual_fn cat xvar yvar residual in
    let out = ref [] in
    for b = 0 to partitions - 1 do
      (* Anti joins must also emit left rows whose partition has no right
         rows at all, so every partition pair is processed. *)
      let joined =
        hash_join_keyed kind ~xkey ~ykey ~residual (List.rev xparts.(b))
          (List.rev yparts.(b))
      in
      out := List.rev_append joined !out
    done;
    dedup !out
  | Plan.RenameOp (pairs, input) ->
    List.map
      (fun row ->
        Value.tuple
          (List.map
             (fun (n, v) ->
               match List.assoc_opt n pairs with
               | Some n' -> (n', v)
               | None -> (n, v))
             (Value.as_tuple row)))
      (rows cat input)
  | Plan.UnnestOp (a, input) ->
    let as_row inner =
      match inner with
      | Value.VTuple _ -> inner
      | atom -> Value.tuple [ (a, atom) ]
    in
    dedup
      (List.concat_map
         (fun row ->
           let rest = Value.project_away row [ a ] in
           List.map
             (fun inner -> Value.concat (as_row inner) rest)
             (Value.as_set (Value.field row a)))
         (rows cat input))
  | Plan.NestOp { attrs; into; input } ->
    (match rows cat input with
     | [] -> []
     | first :: _ as elems ->
       let all_fields = Value.field_names first in
       let group_by = List.filter (fun f -> not (List.mem f attrs)) all_fields in
       let groups = VTbl.create 64 in
       let order = ref [] in
       List.iter
         (fun row ->
           let k = Value.project row group_by in
           let member = Value.project row attrs in
           match VTbl.find_opt groups k with
           | Some members -> members := member :: !members
           | None ->
             VTbl.add groups k (ref [ member ]);
             order := k :: !order)
         elems;
       List.rev_map
         (fun k ->
           Value.concat k (Value.tuple [ (into, Value.set !(VTbl.find groups k)) ]))
         !order)
  | Plan.DivideOp (a, b) ->
    (* Hash-based relational division: index the dividend, test each
       candidate quotient row against every divisor row by lookup. *)
    let xs = dedup (rows cat a) and ys = dedup (rows cat b) in
    (match xs, ys with
     | [], _ -> []
     | _, [] -> xs (* divisor schema unobservable; B = {} (cf. Eval) *)
     | x0 :: _, y0 :: _ ->
       let b_attrs = Value.field_names y0 in
       let a_attrs =
         List.filter (fun f -> not (List.mem f b_attrs)) (Value.field_names x0)
       in
       let pair_index = VTbl.create (max 16 (List.length xs)) in
       List.iter
         (fun x ->
           Counters.tick "hash_build";
           VTbl.replace pair_index x ())
         xs;
       let candidates = dedup (List.map (fun x -> Value.project x a_attrs) xs) in
       List.filter
         (fun q ->
           List.for_all
             (fun y ->
               Counters.tick "hash_probe";
               VTbl.mem pair_index (Value.concat q y))
             ys)
         candidates)
  | Plan.Pnhl { attr; elem_key; row_key; into; mem_budget; left; right } ->
    exec_pnhl cat ~attr ~elem_key ~row_key ~into ~mem_budget ~left ~right
  | Plan.Assembly { cls; ref_attr; into; input } ->
    List.map
      (fun row ->
        let obj = Catalog.deref cat cls (Value.field row ref_attr) in
        Value.except row [ (into, obj) ])
      (rows cat input)
  | Plan.EvalOp e -> Value.as_set (Eval.run cat e)
  | Plan.Materialized rows -> rows

(* Hash-set dedup over the memoized [Value.hash], preserving the first
   occurrence of each element (the caller canonicalizes at the top via
   [Value.set]); replaces the former [List.sort_uniq Value.compare], whose
   deep polymorphic comparisons dominated on wide rows. *)
and dedup vs =
  match vs with
  | [] | [ _ ] -> vs
  | _ ->
    let seen = VTbl.create 64 in
    List.filter
      (fun v ->
        if VTbl.mem seen v then false
        else begin
          VTbl.add seen v ();
          true
        end)
      vs

and exec_join cat algo kind xvar yvar keys residual left right =
  let xs = rows cat left and ys = rows cat right in
  match algo, keys with
  | Plan.Hash, _ :: _ -> hash_join cat kind xvar yvar keys residual xs ys
  | Plan.Sort_merge, (kx, ky) :: _ ->
    (match kind with
     | Expr.Inner -> sort_merge_join cat xvar yvar (kx, ky) residual keys xs ys
     | _ -> exec_error "sort-merge supports only inner joins")
  | (Plan.Hash | Plan.Sort_merge), [] ->
    exec_error "hash/sort-merge join without equi keys"
  | Plan.Nested_loop, _ ->
    nested_loop_join cat kind xvar yvar keys residual xs ys

and nested_loop_join cat kind xvar yvar keys residual xs ys =
  let xkey = key_fns cat xvar `Left keys and ykey = key_fns cat yvar `Right keys in
  let residual = residual_fn cat xvar yvar residual in
  (* The left key is extracted once per left tuple, not once per pair. *)
  let full_pred x kx y =
    Counters.tick "nl_pair";
    Key.equal kx (ykey y) && residual x y
  in
  match kind with
  | Expr.Inner ->
    dedup
      (List.concat_map
         (fun x ->
           let kx = xkey x in
           List.filter_map
             (fun y -> if full_pred x kx y then Some (Value.concat x y) else None)
             ys)
         xs)
  | Expr.Semi ->
    List.filter (fun x -> List.exists (full_pred x (xkey x)) ys) xs
  | Expr.Anti ->
    List.filter (fun x -> not (List.exists (full_pred x (xkey x)) ys)) xs
  | Expr.LeftOuter pad ->
    let null_row = Value.tuple (List.map (fun a -> (a, Value.VNull)) pad) in
    dedup
      (List.concat_map
         (fun x ->
           match List.filter (full_pred x (xkey x)) ys with
           | [] -> [ Value.concat x null_row ]
           | ms -> List.map (Value.concat x) ms)
         xs)

and hash_join cat kind xvar yvar keys residual xs ys =
  let xkey = key_fns cat xvar `Left keys and ykey = key_fns cat yvar `Right keys in
  let residual = residual_fn cat xvar yvar residual in
  hash_join_keyed kind ~xkey ~ykey ~residual xs ys

and hash_join_keyed kind ~xkey ~ykey ~residual xs ys =
  let tbl = KTbl.create (max 16 (List.length ys)) in
  List.iter
    (fun y ->
      Counters.tick "hash_build";
      KTbl.add tbl (ykey y) y)
    ys;
  let matches x =
    Counters.tick "hash_probe";
    List.filter (residual x) (KTbl.find_all tbl (xkey x))
  in
  (* Semi/anti probes stop at the first candidate that passes the residual
     instead of materializing (and residual-testing) the full match list. *)
  let has_match x =
    Counters.tick "hash_probe";
    List.exists (residual x) (KTbl.find_all tbl (xkey x))
  in
  match kind with
  | Expr.Inner ->
    dedup (List.concat_map (fun x -> List.map (Value.concat x) (matches x)) xs)
  | Expr.Semi -> List.filter has_match xs
  | Expr.Anti -> List.filter (fun x -> not (has_match x)) xs
  | Expr.LeftOuter pad ->
    let null_row = Value.tuple (List.map (fun a -> (a, Value.VNull)) pad) in
    dedup
      (List.concat_map
         (fun x ->
           match matches x with
           | [] -> [ Value.concat x null_row ]
           | ms -> List.map (Value.concat x) ms)
         xs)

and sort_merge_join cat xvar yvar (kx, ky) residual all_keys xs ys =
  (* Sort both inputs on the first key; equal-key runs are then joined,
     checking the remaining keys and residual per pair. *)
  let kxf = param1 cat ~var:xvar kx and kyf = param1 cat ~var:yvar ky in
  let rest_keys = List.tl all_keys in
  let rxkey = key_fns cat xvar `Left rest_keys
  and rykey = key_fns cat yvar `Right rest_keys in
  let residual = residual_fn cat xvar yvar residual in
  let cmp (a, _) (b, _) =
    Counters.tick "sm_cmp";
    Value.compare a b
  in
  let xs = List.sort cmp (List.map (fun row -> (kxf row, row)) xs) in
  let ys = List.sort cmp (List.map (fun row -> (kyf row, row)) ys) in
  let pair_ok x y = Key.equal (rxkey x) (rykey y) && residual x y in
  let rec run_of key acc = function
    | (k, v) :: rest when Value.equal k key -> run_of key (v :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  let rec merge xs ys acc =
    match xs, ys with
    | [], _ | _, [] -> acc
    | (kx0, _) :: _, (ky0, _) :: _ ->
      Counters.tick "sm_cmp";
      let c = Value.compare kx0 ky0 in
      if c < 0 then merge (snd (run_of kx0 [] xs)) ys acc
      else if c > 0 then merge xs (snd (run_of ky0 [] ys)) acc
      else
        let xrun, xs' = run_of kx0 [] xs in
        let yrun, ys' = run_of ky0 [] ys in
        let acc =
          List.fold_left
            (fun acc x ->
              List.fold_left
                (fun acc y ->
                  if pair_ok x y then Value.concat x y :: acc else acc)
                acc yrun)
            acc xrun
        in
        merge xs' ys' acc
  in
  dedup (merge xs ys [])

and exec_nestjoin cat algo xvar yvar keys residual body attr left right =
  let xs = rows cat left and ys = rows cat right in
  let body = param2 cat ~vars:(xvar, yvar) body in
  let residual = residual_fn cat xvar yvar residual in
  let attach x ms =
    let projected = List.map (fun y -> body x y) ms in
    Value.concat x (Value.tuple [ (attr, Value.set projected) ])
  in
  match algo, keys with
  | Plan.Sort_merge, (kx, ky) :: rest_keys ->
    (* Adapted sort-merge join (Section 6.1): sort both inputs on the first
       key and pair each left run with the matching right run; dangling
       left tuples get the empty group. *)
    let kxf = param1 cat ~var:xvar kx and kyf = param1 cat ~var:yvar ky in
    let rxkey = key_fns cat xvar `Left rest_keys
    and rykey = key_fns cat yvar `Right rest_keys in
    let cmp (a, _) (b, _) =
      Counters.tick "sm_cmp";
      Value.compare a b
    in
    let xs = List.sort cmp (List.map (fun row -> (kxf row, row)) xs) in
    let ys = List.sort cmp (List.map (fun row -> (kyf row, row)) ys) in
    let pair_ok x y = Key.equal (rxkey x) (rykey y) && residual x y in
    let rec run_of key acc = function
      | (k, v) :: rest when Value.equal k key -> run_of key (v :: acc) rest
      | rest -> (List.rev acc, rest)
    in
    let rec merge xs ys acc =
      match xs, ys with
      | [], _ -> List.rev acc
      | (_, x) :: xs', [] -> merge xs' [] (attach x [] :: acc)
      | (kx0, _) :: _, (ky0, _) :: _ ->
        Counters.tick "sm_cmp";
        let c = Value.compare kx0 ky0 in
        if c < 0 then
          let xrun, xs' = run_of kx0 [] xs in
          merge xs' ys (List.rev_append (List.map (fun x -> attach x []) xrun) acc)
        else if c > 0 then
          let _, ys' = run_of ky0 [] ys in
          merge xs ys' acc
        else
          let xrun, xs' = run_of kx0 [] xs in
          let yrun, ys' = run_of ky0 [] ys in
          let acc =
            List.fold_left
              (fun acc x -> attach x (List.filter (pair_ok x) yrun) :: acc)
              acc xrun
          in
          merge xs' ys' acc
    in
    merge xs ys []
  | Plan.Sort_merge, [] -> exec_error "sort-merge nestjoin without equi keys"
  | Plan.Hash, _ :: _ ->
    let xkey = key_fns cat xvar `Left keys and ykey = key_fns cat yvar `Right keys in
    let tbl = KTbl.create (max 16 (List.length ys)) in
    List.iter
      (fun y ->
        Counters.tick "hash_build";
        KTbl.add tbl (ykey y) y)
      ys;
    List.map
      (fun x ->
        Counters.tick "hash_probe";
        let ms = List.filter (residual x) (KTbl.find_all tbl (xkey x)) in
        attach x ms)
      xs
  | _ ->
    let xkey = key_fns cat xvar `Left keys and ykey = key_fns cat yvar `Right keys in
    List.map
      (fun x ->
        let kx = xkey x in
        let ms =
          List.filter
            (fun y ->
              Counters.tick "nl_pair";
              Key.equal kx (ykey y) && residual x y)
            ys
        in
        attach x ms)
      xs

(* The Partitioned Nested-Hashed-Loops algorithm of [DeLa92]: the flat base
   table (right operand) is the build table; it is split into partitions of
   at most [mem_budget] rows (simulating the segments that fit in main
   memory).  For each partition, a hash table on the row key is built and
   every left row's set-valued attribute elements are probed against it,
   accumulating partial result sets per left row, which are merged across
   partitions.  Left rows with empty attribute sets survive with an empty
   result — unlike the unnest-join-nest pipeline, which loses them. *)
and exec_pnhl cat ~attr ~elem_key ~row_key ~into ~mem_budget ~left ~right =
  if mem_budget <= 0 then exec_error "pnhl: memory budget must be positive";
  let xs = rows cat left and ys = rows cat right in
  let row_key = param1 cat ~var:"row" row_key in
  let elem_key = param1 cat ~var:"elem" elem_key in
  let xs = Array.of_list xs in
  let partial = Array.make (Array.length xs) [] in
  let rec partitions = function
    | [] -> []
    | ys ->
      let rec take n acc = function
        | rest when n = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | y :: rest -> take (n - 1) (y :: acc) rest
      in
      let seg, rest = take mem_budget [] ys in
      seg :: partitions rest
  in
  List.iter
    (fun segment ->
      Counters.tick "pnhl_partition";
      let tbl = VTbl.create (max 16 (List.length segment)) in
      List.iter
        (fun y ->
          Counters.tick "pnhl_build";
          VTbl.add tbl (row_key y) y)
        segment;
      Array.iteri
        (fun i x ->
          let elems = Value.as_set (Value.field x attr) in
          List.iter
            (fun e ->
              Counters.tick "pnhl_probe";
              partial.(i) <- VTbl.find_all tbl (elem_key e) @ partial.(i))
            elems)
        xs)
    (partitions ys);
  Array.to_list
    (Array.mapi
       (fun i x -> Value.except x [ (into, Value.set partial.(i)) ])
       xs)

(* Execute a plan, returning its result as a canonical set value. *)
let run cat p = Value.set (rows cat p)
