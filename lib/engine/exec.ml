(* Plan execution.

   The engine's contribution is the set-oriented organization of the
   iteration: hash tables for equi-joins, semijoins, antijoins and
   nestjoins, a sort-merge alternative, the PNHL algorithm for set-valued
   attribute materialization, and assembly for pointer dereferencing.

   Parameter expressions (join keys, filter predicates, residuals, map and
   nestjoin bodies) are compiled once per operator into closures
   ([Njq_adl.Compile]) before iterating, so no per-tuple AST dispatch or
   environment allocation remains in the loops; flipping [compile_params]
   reverts to per-tuple reference evaluation for measurement.  Set results
   are deduplicated with a hash set over the memoized [Value.hash] instead
   of a full sort.

   Work counters (see [Njq_adl.Counters]): "scan_row", "filter_eval",
   "hash_build", "hash_probe", "nl_pair", "sm_cmp", "pnhl_partition",
   "pnhl_build", "pnhl_probe", plus "oid_lookup" from [Catalog.deref]. *)

open Njq_adl

exception Exec_error of string

let exec_error fmt = Fmt.kstr (fun s -> raise (Exec_error s)) fmt

module VTbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal

  (* Full-depth structural hash, memoized on set nodes; consistent with
     [Value.equal] because values are canonical. *)
  let hash = Value.hash
end)

(* Ordered composite key for multi-attribute equi joins: one slot per key
   pair, compared and hashed positionally.  Unlike the former [Value.VSet]
   encoding, key identity cannot depend on canonical set ordering or on the
   order in which attribute values happen to be evaluated. *)
module Key = struct
  type t = Value.t array

  let equal a b =
    Array.length a = Array.length b
    &&
    let rec go i = i < 0 || (Value.equal a.(i) b.(i) && go (i - 1)) in
    go (Array.length a - 1)

  let hash k =
    Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) (Array.length k) k
end

module KTbl = Hashtbl.Make (Key)

(* Parameter-expression mode: [true] (default) compiles each operator's
   parameter expressions once into closures; [false] falls back to
   per-tuple reference evaluation.  The bench harness flips the flag to
   measure the compiled layer's win on identical plans. *)
let compile_params = ref true

let param1 cat ~var e =
  if !compile_params then Compile.expr1 cat ~var e
  else fun v -> Eval.eval cat [ (var, v) ] e

let pred1 cat ~var e =
  if !compile_params then Compile.pred1 cat ~var e
  else fun v -> Eval.run_pred cat [ (var, v) ] e

let param2 cat ~vars:((a, b) as vars) e =
  if !compile_params then Compile.expr2 cat ~vars e
  else fun va vb -> Eval.eval cat [ (a, va); (b, vb) ] e

let pred2 cat ~vars:((a, b) as vars) e =
  if !compile_params then Compile.pred2 cat ~vars e
  else fun va vb -> Eval.run_pred cat [ (a, va); (b, vb) ] e

(* Spawner variants for the parallel operators: compiled closures carry a
   per-instance slot buffer, so a partition task running on a pool domain
   must mint its own instance ([Compile]'s spawners share the compiled
   code, which is immutable).  The interpreted fallback is stateless and
   spawns itself. *)

let param1_spawner cat ~var e =
  if !compile_params then Compile.expr1_spawner cat ~var e
  else fun () v -> Eval.eval cat [ (var, v) ] e

let pred1_spawner cat ~var e =
  if !compile_params then Compile.pred1_spawner cat ~var e
  else fun () v -> Eval.run_pred cat [ (var, v) ] e

let param2_spawner cat ~vars:((a, b) as vars) e =
  if !compile_params then Compile.expr2_spawner cat ~vars e
  else fun () va vb -> Eval.eval cat [ (a, va); (b, vb) ] e

let pred2_spawner cat ~vars:((a, b) as vars) e =
  if !compile_params then Compile.pred2_spawner cat ~vars e
  else fun () va vb -> Eval.run_pred cat [ (a, va); (b, vb) ] e

(* Compiled extractor for one side of the equi-join keys. *)
let key_fns cat var side keys =
  let fns =
    Array.of_list
      (List.map
         (fun (kx, ky) ->
           param1 cat ~var (match side with `Left -> kx | `Right -> ky))
         keys)
  in
  fun row -> Array.map (fun f -> f row) fns

let residual_fn cat xvar yvar residual =
  if Expr.is_true residual then fun _ _ -> true
  else pred2 cat ~vars:(xvar, yvar) residual

let key_fns_spawner cat var side keys =
  let spawners =
    Array.of_list
      (List.map
         (fun (kx, ky) ->
           param1_spawner cat ~var (match side with `Left -> kx | `Right -> ky))
         keys)
  in
  fun () ->
    let fns = Array.map (fun s -> s ()) spawners in
    fun row -> Array.map (fun f -> f row) fns

let residual_spawner cat xvar yvar residual =
  if Expr.is_true residual then fun () _ _ -> true
  else pred2_spawner cat ~vars:(xvar, yvar) residual

(* Work counters, interned once into registry handles so the inner loops
   pay a flag read and a field add per tick instead of a string-hashtable
   probe (see [Njq_obs.Metrics]).  [Counters.get]/[snapshot] still see
   these — both doors share the same cells. *)
module M = Njq_obs.Metrics
module Clock = Njq_obs.Clock
module Span = Njq_obs.Span

let c_scan_row = M.counter "scan_row"
let c_filter_eval = M.counter "filter_eval"
let c_hash_build = M.counter "hash_build"
let c_hash_probe = M.counter "hash_probe"
let c_nl_pair = M.counter "nl_pair"
let c_sm_cmp = M.counter "sm_cmp"
let c_grace_partition = M.counter "grace_partition"
let c_grace_partition_row = M.counter "grace_partition_row"
let c_pnhl_partition = M.counter "pnhl_partition"
let c_pnhl_build = M.counter "pnhl_build"
let c_pnhl_probe = M.counter "pnhl_probe"
let c_par_partition = M.counter "par_partition"
let c_par_partition_row = M.counter "par_partition_row"

(* Non-negative partition index from a value hash ([Value.hash] can go
   negative through multiplicative overflow). *)
let bucket_of_hash h partitions = (h land max_int) mod partitions

(* Split [rows] into [partitions] buckets by key hash, preserving the
   relative order of rows within each bucket.  Runs on the main domain, so
   its per-row tick stays independent of the pool size. *)
let partition_by_key keyf partitions rows_list =
  let parts = Array.make partitions [] in
  List.iter
    (fun row ->
      M.incr c_par_partition_row;
      let b = bucket_of_hash (Value.hash (keyf row)) partitions in
      parts.(b) <- row :: parts.(b))
    rows_list;
  M.incr ~n:partitions c_par_partition;
  Array.map List.rev parts

(* Contiguous chunk boundaries for the parallel scan-shaped operators: the
   chunk count adapts to the pool (it cannot affect results — chunks are
   re-concatenated in order — only load balance). *)
let par_chunks n =
  let d = Pool.domains () in
  if n <= 1 || d <= 1 then [| (0, n) |]
  else begin
    let k = min n (d * 4) in
    let size = (n + k - 1) / k in
    Array.init k (fun i -> (i * size, min n ((i + 1) * size)))
  end

(* --------------------------------------------------------------------- *)
(* Non-perturbing per-operator profiling                                  *)
(*                                                                        *)
(* When a collector is installed (see [collect]), the [rows] dispatcher   *)
(* brackets every plan-node execution with clock and counter readings     *)
(* and records one [node_sample] per node — the plan tree itself          *)
(* executes unchanged, so row counts, counter totals and algorithmic      *)
(* behaviour are exactly those of an unprofiled run.  Children charge     *)
(* their inclusive totals to the parent frame, so exclusive (self) time   *)
(* and work fall out by subtraction.  Samples are keyed by the physical   *)
(* identity of the [Plan.t] node; [Profile] joins them back to the tree.  *)
(* --------------------------------------------------------------------- *)

type node_sample = {
  sample_plan : Plan.t;  (* physical node identity, compare with [==] *)
  out_rows : int;
  wall_ns : int;  (* exclusive of children *)
  cpu_s : float;  (* exclusive of children *)
  incl_wall_ns : int;
  incl_cpu_s : float;
  work : (string * int) list;  (* exclusive counter deltas, sorted *)
}

type frame = {
  mutable f_child_wall : int;
  mutable f_child_cpu : float;
  mutable f_child_work : (string * int) list;  (* children-inclusive, summed *)
}

type collector = {
  mutable samples : node_sample list;  (* reverse completion order *)
  mutable stack : frame list;
}

let collector : collector option ref = ref None

(* Pointwise sum / difference of sorted counter-delta assoc lists. *)
let merge_work op a b =
  let rec go a b =
    match a, b with
    | [], rest -> List.filter_map (fun (k, v) -> op0 k v) rest
    | rest, [] -> rest
    | (ka, va) :: ta, (kb, vb) :: tb ->
      let c = String.compare ka kb in
      if c < 0 then (ka, va) :: go ta b
      else if c > 0 then (
        match op0 kb vb with
        | Some kv -> kv :: go a tb
        | None -> go a tb)
      else
        let v = op va vb in
        if v = 0 then go ta tb else (ka, v) :: go ta tb
  and op0 k v =
    let v = op 0 v in
    if v = 0 then None else Some (k, v)
  in
  go a b

let add_work = merge_work ( + )
let sub_work = merge_work ( - )

let rec exec_node (cat : Catalog.t) (p : Plan.t) : Value.t list =
  match p with
  | Plan.Scan name ->
    let rs = Catalog.rows cat name in
    M.incr ~n:(List.length rs) c_scan_row;
    rs
  | Plan.Filter { var; pred; input } ->
    let pred = pred1 cat ~var pred in
    List.filter
      (fun row ->
        M.incr c_filter_eval;
        pred row)
      (rows cat input)
  | Plan.MapOp { var; body; input } ->
    let body = param1 cat ~var body in
    dedup (List.map body (rows cat input))
  | Plan.ProjectOp (attrs, input) ->
    dedup (List.map (fun row -> Value.project row attrs) (rows cat input))
  | Plan.FlattenOp input ->
    dedup (List.concat_map Value.as_set (rows cat input))
  | Plan.UnionOp (a, b) -> dedup (rows cat a @ rows cat b)
  | Plan.InterOp (a, b) ->
    let tbl = VTbl.create 64 in
    List.iter (fun v -> VTbl.replace tbl v ()) (rows cat b);
    List.filter (VTbl.mem tbl) (rows cat a)
  | Plan.DiffOp (a, b) ->
    let tbl = VTbl.create 64 in
    List.iter (fun v -> VTbl.replace tbl v ()) (rows cat b);
    List.filter (fun v -> not (VTbl.mem tbl v)) (rows cat a)
  | Plan.ProductOp (a, b) ->
    let ys = rows cat b in
    dedup
      (List.concat_map
         (fun x -> List.map (fun y -> Value.concat x y) ys)
         (rows cat a))
  | Plan.JoinOp { algo; kind; xvar; yvar; keys; residual; left; right } ->
    exec_join cat algo kind xvar yvar keys residual left right
  | Plan.NestjoinOp { algo; xvar; yvar; keys; residual; body; attr; left; right } ->
    exec_nestjoin cat algo xvar yvar keys residual body attr left right
  | Plan.MemberJoin { kind; xvar; yvar; xset; elem_var; elem_key; ykey; left; right }
    ->
    let xs = rows cat left and ys = rows cat right in
    let ykey = param1 cat ~var:yvar ykey in
    let xset = param1 cat ~var:xvar xset in
    let elem_key = param2 cat ~vars:(elem_var, xvar) elem_key in
    let tbl = VTbl.create (max 16 (List.length ys)) in
    List.iter
      (fun y ->
        M.incr c_hash_build;
        VTbl.add tbl (ykey y) y)
      ys;
    let matches x =
      List.concat_map
        (fun e ->
          M.incr c_hash_probe;
          VTbl.find_all tbl (elem_key e x))
        (Value.as_set (xset x))
    in
    (* Semi/anti probes stop at the first matching element instead of
       materializing every match; only the probes performed are ticked. *)
    let has_match x =
      List.exists
        (fun e ->
          M.incr c_hash_probe;
          VTbl.mem tbl (elem_key e x))
        (Value.as_set (xset x))
    in
    (match kind with
     | Plan.MSemi -> List.filter has_match xs
     | Plan.MAnti -> List.filter (fun x -> not (has_match x)) xs
     | Plan.MInner ->
       dedup (List.concat_map (fun x -> List.map (Value.concat x) (matches x)) xs)
     | Plan.MNest { body; attr } ->
       let body = param2 cat ~vars:(xvar, yvar) body in
       List.map
         (fun x ->
           let ms = dedup (matches x) in
           let projected = List.map (fun y -> body x y) ms in
           Value.concat x (Value.tuple [ (attr, Value.set projected) ]))
         xs)
  | Plan.GraceJoin { kind; xvar; yvar; keys; residual; mem_budget; left; right }
    ->
    if mem_budget <= 0 then exec_error "grace join: memory budget must be positive";
    (match kind with
     | Expr.LeftOuter _ -> exec_error "grace join does not support outer joins"
     | _ -> ());
    let xs = rows cat left and ys = rows cat right in
    let partitions =
      max 1 ((List.length ys + mem_budget - 1) / mem_budget)
    in
    (* Partition both inputs on the hash of the first key; rows of the same
       key land in the same partition pair, so each pair joins
       independently. *)
    let kx0, ky0 =
      match keys with
      | k :: _ -> k
      | [] -> exec_error "grace join without equi keys"
    in
    let kx0 = param1 cat ~var:xvar kx0 and ky0 = param1 cat ~var:yvar ky0 in
    let bucket k row =
      M.incr c_grace_partition_row;
      bucket_of_hash (Value.hash (k row)) partitions
    in
    let xparts = Array.make partitions [] and yparts = Array.make partitions [] in
    List.iter
      (fun x ->
        let b = bucket kx0 x in
        xparts.(b) <- x :: xparts.(b))
      xs;
    List.iter
      (fun y ->
        let b = bucket ky0 y in
        yparts.(b) <- y :: yparts.(b))
      ys;
    M.incr ~n:partitions c_grace_partition;
    (* Compile keys and residual once; every partition pair reuses them. *)
    let xkey = key_fns cat xvar `Left keys and ykey = key_fns cat yvar `Right keys in
    let residual = residual_fn cat xvar yvar residual in
    let out = ref [] in
    for b = 0 to partitions - 1 do
      (* Anti joins must also emit left rows whose partition has no right
         rows at all, so every partition pair is processed. *)
      let joined =
        hash_join_keyed kind ~xkey ~ykey ~residual (List.rev xparts.(b))
          (List.rev yparts.(b))
      in
      out := List.rev_append joined !out
    done;
    dedup !out
  | Plan.RenameOp (pairs, input) ->
    List.map
      (fun row ->
        Value.tuple
          (List.map
             (fun (n, v) ->
               match List.assoc_opt n pairs with
               | Some n' -> (n', v)
               | None -> (n, v))
             (Value.as_tuple row)))
      (rows cat input)
  | Plan.UnnestOp (a, input) ->
    let as_row inner =
      match inner with
      | Value.VTuple _ -> inner
      | atom -> Value.tuple [ (a, atom) ]
    in
    dedup
      (List.concat_map
         (fun row ->
           let rest = Value.project_away row [ a ] in
           List.map
             (fun inner -> Value.concat (as_row inner) rest)
             (Value.as_set (Value.field row a)))
         (rows cat input))
  | Plan.NestOp { attrs; into; input } ->
    (match rows cat input with
     | [] -> []
     | first :: _ as elems ->
       let all_fields = Value.field_names first in
       let group_by = List.filter (fun f -> not (List.mem f attrs)) all_fields in
       let groups = VTbl.create 64 in
       let order = ref [] in
       List.iter
         (fun row ->
           let k = Value.project row group_by in
           let member = Value.project row attrs in
           match VTbl.find_opt groups k with
           | Some members -> members := member :: !members
           | None ->
             VTbl.add groups k (ref [ member ]);
             order := k :: !order)
         elems;
       List.rev_map
         (fun k ->
           Value.concat k (Value.tuple [ (into, Value.set !(VTbl.find groups k)) ]))
         !order)
  | Plan.DivideOp (a, b) ->
    (* Hash-based relational division: index the dividend, test each
       candidate quotient row against every divisor row by lookup. *)
    let xs = dedup (rows cat a) and ys = dedup (rows cat b) in
    (match xs, ys with
     | [], _ -> []
     | _, [] -> xs (* divisor schema unobservable; B = {} (cf. Eval) *)
     | x0 :: _, y0 :: _ ->
       let b_attrs = Value.field_names y0 in
       let a_attrs =
         List.filter (fun f -> not (List.mem f b_attrs)) (Value.field_names x0)
       in
       let pair_index = VTbl.create (max 16 (List.length xs)) in
       List.iter
         (fun x ->
           M.incr c_hash_build;
           VTbl.replace pair_index x ())
         xs;
       let candidates = dedup (List.map (fun x -> Value.project x a_attrs) xs) in
       List.filter
         (fun q ->
           List.for_all
             (fun y ->
               M.incr c_hash_probe;
               VTbl.mem pair_index (Value.concat q y))
             ys)
         candidates)
  | Plan.Pnhl { attr; elem_key; row_key; into; mem_budget; left; right } ->
    exec_pnhl cat ~attr ~elem_key ~row_key ~into ~mem_budget ~left ~right
  | Plan.Assembly { cls; ref_attr; into; input } ->
    List.map
      (fun row ->
        let obj = Catalog.deref cat cls (Value.field row ref_attr) in
        Value.except row [ (into, obj) ])
      (rows cat input)
  | Plan.ParJoinOp { kind; xvar; yvar; keys; residual; partitions; left; right }
    ->
    let xs = rows cat left and ys = rows cat right in
    let kx0, ky0 =
      match keys with
      | k :: _ -> k
      | [] -> exec_error "parallel join without equi keys"
    in
    let partitions = max 1 partitions in
    let kx0 = param1 cat ~var:xvar kx0 and ky0 = param1 cat ~var:yvar ky0 in
    let xparts = partition_by_key kx0 partitions xs
    and yparts = partition_by_key ky0 partitions ys in
    let xkey_s = key_fns_spawner cat xvar `Left keys
    and ykey_s = key_fns_spawner cat yvar `Right keys in
    let residual_s = residual_spawner cat xvar yvar residual in
    let joined =
      Pool.run partitions (fun b ->
          hash_join_keyed kind ~xkey:(xkey_s ()) ~ykey:(ykey_s ())
            ~residual:(residual_s ()) xparts.(b) yparts.(b))
    in
    dedup (List.concat (Array.to_list joined))
  | Plan.ParNestjoinOp
      { xvar; yvar; keys; residual; body; attr; partitions; left; right } ->
    let xs = rows cat left and ys = rows cat right in
    let kx0, ky0 =
      match keys with
      | k :: _ -> k
      | [] -> exec_error "parallel nestjoin without equi keys"
    in
    let partitions = max 1 partitions in
    let kx0 = param1 cat ~var:xvar kx0 and ky0 = param1 cat ~var:yvar ky0 in
    let xparts = partition_by_key kx0 partitions xs
    and yparts = partition_by_key ky0 partitions ys in
    let xkey_s = key_fns_spawner cat xvar `Left keys
    and ykey_s = key_fns_spawner cat yvar `Right keys in
    let residual_s = residual_spawner cat xvar yvar residual in
    let body_s = param2_spawner cat ~vars:(xvar, yvar) body in
    (* Every left row is in exactly one partition, and all right rows with
       its key are in the same one, so its match group is complete there. *)
    let parts_out =
      Pool.run partitions (fun b ->
          let xkey = xkey_s ()
          and ykey = ykey_s ()
          and residual = residual_s ()
          and body = body_s () in
          let ys_b = yparts.(b) in
          let tbl = KTbl.create (max 16 (List.length ys_b)) in
          List.iter
            (fun y ->
              M.incr c_hash_build;
              KTbl.add tbl (ykey y) y)
            ys_b;
          List.map
            (fun x ->
              M.incr c_hash_probe;
              let ms = List.filter (residual x) (KTbl.find_all tbl (xkey x)) in
              let projected = List.map (fun y -> body x y) ms in
              Value.concat x (Value.tuple [ (attr, Value.set projected) ]))
            xparts.(b))
    in
    List.concat (Array.to_list parts_out)
  | Plan.ParPnhl { attr; elem_key; row_key; into; mem_budget; left; right } ->
    exec_par_pnhl cat ~attr ~elem_key ~row_key ~into ~mem_budget ~left ~right
  | Plan.ParFilter { var; pred; input } ->
    let xs = Array.of_list (rows cat input) in
    let pred_s = pred1_spawner cat ~var pred in
    let chunks = par_chunks (Array.length xs) in
    let outs =
      Pool.run (Array.length chunks) (fun c ->
          let pred = pred_s () in
          let lo, hi = chunks.(c) in
          let acc = ref [] in
          for i = hi - 1 downto lo do
            let row = xs.(i) in
            M.incr c_filter_eval;
            if pred row then acc := row :: !acc
          done;
          !acc)
    in
    List.concat (Array.to_list outs)
  | Plan.ParMapOp { var; body; input } ->
    let xs = Array.of_list (rows cat input) in
    let body_s = param1_spawner cat ~var body in
    let chunks = par_chunks (Array.length xs) in
    let outs =
      Pool.run (Array.length chunks) (fun c ->
          let body = body_s () in
          let lo, hi = chunks.(c) in
          let acc = ref [] in
          for i = hi - 1 downto lo do
            acc := body xs.(i) :: !acc
          done;
          !acc)
    in
    dedup (List.concat (Array.to_list outs))
  | Plan.EvalOp e -> Value.as_set (Eval.run cat e)
  | Plan.Materialized rows -> rows

(* Dispatch through the collector when one is installed; the common case
   costs one flag-and-deref test per node, and nothing per tuple. *)
and rows cat p =
  match !collector with None -> exec_node cat p | Some c -> profiled c cat p

and profiled c cat p =
  if Span.tracing () then
    Span.with_span ("op:" ^ Plan.node_label p) (fun () -> profiled_run c cat p)
  else profiled_run c cat p

and profiled_run c cat p =
  let snap0 = M.counter_snapshot () in
  let cpu0 = Clock.cpu_seconds () in
  let t0 = Clock.now_ns () in
  let fr = { f_child_wall = 0; f_child_cpu = 0.0; f_child_work = [] } in
  c.stack <- fr :: c.stack;
  let pop () =
    match c.stack with
    | top :: rest when top == fr -> c.stack <- rest
    | other -> c.stack <- (match other with _ :: r -> r | [] -> [])
  in
  match exec_node cat p with
  | exception e ->
    pop ();
    raise e
  | result ->
    let incl_wall = Clock.elapsed_ns t0 in
    let incl_cpu = Clock.cpu_seconds () -. cpu0 in
    let incl_work = sub_work (M.counter_snapshot ()) snap0 in
    pop ();
    (match c.stack with
     | parent :: _ ->
       parent.f_child_wall <- parent.f_child_wall + incl_wall;
       parent.f_child_cpu <- parent.f_child_cpu +. incl_cpu;
       parent.f_child_work <- add_work parent.f_child_work incl_work
     | [] -> ());
    let sample =
      {
        sample_plan = p;
        out_rows = List.length result;
        wall_ns = incl_wall - fr.f_child_wall;
        cpu_s = incl_cpu -. fr.f_child_cpu;
        incl_wall_ns = incl_wall;
        incl_cpu_s = incl_cpu;
        work = sub_work incl_work fr.f_child_work;
      }
    in
    c.samples <- sample :: c.samples;
    Span.add_attr "rows" (Span.AInt sample.out_rows);
    result

(* Hash-set dedup over the memoized [Value.hash], preserving the first
   occurrence of each element (the caller canonicalizes at the top via
   [Value.set]); replaces the former [List.sort_uniq Value.compare], whose
   deep polymorphic comparisons dominated on wide rows. *)
and dedup vs =
  match vs with
  | [] | [ _ ] -> vs
  | _ ->
    let seen = VTbl.create 64 in
    List.filter
      (fun v ->
        if VTbl.mem seen v then false
        else begin
          VTbl.add seen v ();
          true
        end)
      vs

and exec_join cat algo kind xvar yvar keys residual left right =
  let xs = rows cat left and ys = rows cat right in
  match algo, keys with
  | Plan.Hash, _ :: _ -> hash_join cat kind xvar yvar keys residual xs ys
  | Plan.Sort_merge, (kx, ky) :: _ ->
    (match kind with
     | Expr.Inner -> sort_merge_join cat xvar yvar (kx, ky) residual keys xs ys
     | _ -> exec_error "sort-merge supports only inner joins")
  | (Plan.Hash | Plan.Sort_merge), [] ->
    exec_error "hash/sort-merge join without equi keys"
  | Plan.Nested_loop, _ ->
    nested_loop_join cat kind xvar yvar keys residual xs ys

and nested_loop_join cat kind xvar yvar keys residual xs ys =
  let xkey = key_fns cat xvar `Left keys and ykey = key_fns cat yvar `Right keys in
  let residual = residual_fn cat xvar yvar residual in
  (* The left key is extracted once per left tuple, not once per pair. *)
  let full_pred x kx y =
    M.incr c_nl_pair;
    Key.equal kx (ykey y) && residual x y
  in
  match kind with
  | Expr.Inner ->
    dedup
      (List.concat_map
         (fun x ->
           let kx = xkey x in
           List.filter_map
             (fun y -> if full_pred x kx y then Some (Value.concat x y) else None)
             ys)
         xs)
  | Expr.Semi ->
    List.filter (fun x -> List.exists (full_pred x (xkey x)) ys) xs
  | Expr.Anti ->
    List.filter (fun x -> not (List.exists (full_pred x (xkey x)) ys)) xs
  | Expr.LeftOuter pad ->
    let null_row = Value.tuple (List.map (fun a -> (a, Value.VNull)) pad) in
    dedup
      (List.concat_map
         (fun x ->
           match List.filter (full_pred x (xkey x)) ys with
           | [] -> [ Value.concat x null_row ]
           | ms -> List.map (Value.concat x) ms)
         xs)

and hash_join cat kind xvar yvar keys residual xs ys =
  let xkey = key_fns cat xvar `Left keys and ykey = key_fns cat yvar `Right keys in
  let residual = residual_fn cat xvar yvar residual in
  hash_join_keyed kind ~xkey ~ykey ~residual xs ys

and hash_join_keyed kind ~xkey ~ykey ~residual xs ys =
  let tbl = KTbl.create (max 16 (List.length ys)) in
  List.iter
    (fun y ->
      M.incr c_hash_build;
      KTbl.add tbl (ykey y) y)
    ys;
  let matches x =
    M.incr c_hash_probe;
    List.filter (residual x) (KTbl.find_all tbl (xkey x))
  in
  (* Semi/anti probes stop at the first candidate that passes the residual
     instead of materializing (and residual-testing) the full match list. *)
  let has_match x =
    M.incr c_hash_probe;
    List.exists (residual x) (KTbl.find_all tbl (xkey x))
  in
  match kind with
  | Expr.Inner ->
    dedup (List.concat_map (fun x -> List.map (Value.concat x) (matches x)) xs)
  | Expr.Semi -> List.filter has_match xs
  | Expr.Anti -> List.filter (fun x -> not (has_match x)) xs
  | Expr.LeftOuter pad ->
    let null_row = Value.tuple (List.map (fun a -> (a, Value.VNull)) pad) in
    dedup
      (List.concat_map
         (fun x ->
           match matches x with
           | [] -> [ Value.concat x null_row ]
           | ms -> List.map (Value.concat x) ms)
         xs)

and sort_merge_join cat xvar yvar (kx, ky) residual all_keys xs ys =
  (* Sort both inputs on the first key; equal-key runs are then joined,
     checking the remaining keys and residual per pair. *)
  let kxf = param1 cat ~var:xvar kx and kyf = param1 cat ~var:yvar ky in
  let rest_keys = List.tl all_keys in
  let rxkey = key_fns cat xvar `Left rest_keys
  and rykey = key_fns cat yvar `Right rest_keys in
  let residual = residual_fn cat xvar yvar residual in
  let cmp (a, _) (b, _) =
    M.incr c_sm_cmp;
    Value.compare a b
  in
  let xs = List.sort cmp (List.map (fun row -> (kxf row, row)) xs) in
  let ys = List.sort cmp (List.map (fun row -> (kyf row, row)) ys) in
  let pair_ok x y = Key.equal (rxkey x) (rykey y) && residual x y in
  let rec run_of key acc = function
    | (k, v) :: rest when Value.equal k key -> run_of key (v :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  let rec merge xs ys acc =
    match xs, ys with
    | [], _ | _, [] -> acc
    | (kx0, _) :: _, (ky0, _) :: _ ->
      M.incr c_sm_cmp;
      let c = Value.compare kx0 ky0 in
      if c < 0 then merge (snd (run_of kx0 [] xs)) ys acc
      else if c > 0 then merge xs (snd (run_of ky0 [] ys)) acc
      else
        let xrun, xs' = run_of kx0 [] xs in
        let yrun, ys' = run_of ky0 [] ys in
        let acc =
          List.fold_left
            (fun acc x ->
              List.fold_left
                (fun acc y ->
                  if pair_ok x y then Value.concat x y :: acc else acc)
                acc yrun)
            acc xrun
        in
        merge xs' ys' acc
  in
  dedup (merge xs ys [])

and exec_nestjoin cat algo xvar yvar keys residual body attr left right =
  let xs = rows cat left and ys = rows cat right in
  let body = param2 cat ~vars:(xvar, yvar) body in
  let residual = residual_fn cat xvar yvar residual in
  let attach x ms =
    let projected = List.map (fun y -> body x y) ms in
    Value.concat x (Value.tuple [ (attr, Value.set projected) ])
  in
  match algo, keys with
  | Plan.Sort_merge, (kx, ky) :: rest_keys ->
    (* Adapted sort-merge join (Section 6.1): sort both inputs on the first
       key and pair each left run with the matching right run; dangling
       left tuples get the empty group. *)
    let kxf = param1 cat ~var:xvar kx and kyf = param1 cat ~var:yvar ky in
    let rxkey = key_fns cat xvar `Left rest_keys
    and rykey = key_fns cat yvar `Right rest_keys in
    let cmp (a, _) (b, _) =
      M.incr c_sm_cmp;
      Value.compare a b
    in
    let xs = List.sort cmp (List.map (fun row -> (kxf row, row)) xs) in
    let ys = List.sort cmp (List.map (fun row -> (kyf row, row)) ys) in
    let pair_ok x y = Key.equal (rxkey x) (rykey y) && residual x y in
    let rec run_of key acc = function
      | (k, v) :: rest when Value.equal k key -> run_of key (v :: acc) rest
      | rest -> (List.rev acc, rest)
    in
    let rec merge xs ys acc =
      match xs, ys with
      | [], _ -> List.rev acc
      | (_, x) :: xs', [] -> merge xs' [] (attach x [] :: acc)
      | (kx0, _) :: _, (ky0, _) :: _ ->
        M.incr c_sm_cmp;
        let c = Value.compare kx0 ky0 in
        if c < 0 then
          let xrun, xs' = run_of kx0 [] xs in
          merge xs' ys (List.rev_append (List.map (fun x -> attach x []) xrun) acc)
        else if c > 0 then
          let _, ys' = run_of ky0 [] ys in
          merge xs ys' acc
        else
          let xrun, xs' = run_of kx0 [] xs in
          let yrun, ys' = run_of ky0 [] ys in
          let acc =
            List.fold_left
              (fun acc x -> attach x (List.filter (pair_ok x) yrun) :: acc)
              acc xrun
          in
          merge xs' ys' acc
    in
    merge xs ys []
  | Plan.Sort_merge, [] -> exec_error "sort-merge nestjoin without equi keys"
  | Plan.Hash, _ :: _ ->
    let xkey = key_fns cat xvar `Left keys and ykey = key_fns cat yvar `Right keys in
    let tbl = KTbl.create (max 16 (List.length ys)) in
    List.iter
      (fun y ->
        M.incr c_hash_build;
        KTbl.add tbl (ykey y) y)
      ys;
    List.map
      (fun x ->
        M.incr c_hash_probe;
        let ms = List.filter (residual x) (KTbl.find_all tbl (xkey x)) in
        attach x ms)
      xs
  | _ ->
    let xkey = key_fns cat xvar `Left keys and ykey = key_fns cat yvar `Right keys in
    List.map
      (fun x ->
        let kx = xkey x in
        let ms =
          List.filter
            (fun y ->
              M.incr c_nl_pair;
              Key.equal kx (ykey y) && residual x y)
            ys
        in
        attach x ms)
      xs

(* The Partitioned Nested-Hashed-Loops algorithm of [DeLa92]: the flat base
   table (right operand) is the build table; it is split into partitions of
   at most [mem_budget] rows (simulating the segments that fit in main
   memory).  For each partition, a hash table on the row key is built and
   every left row's set-valued attribute elements are probed against it,
   accumulating partial result sets per left row, which are merged across
   partitions.  Left rows with empty attribute sets survive with an empty
   result — unlike the unnest-join-nest pipeline, which loses them. *)
and exec_pnhl cat ~attr ~elem_key ~row_key ~into ~mem_budget ~left ~right =
  if mem_budget <= 0 then exec_error "pnhl: memory budget must be positive";
  let xs = rows cat left and ys = rows cat right in
  let row_key = param1 cat ~var:"row" row_key in
  let elem_key = param1 cat ~var:"elem" elem_key in
  let xs = Array.of_list xs in
  let partial = Array.make (Array.length xs) [] in
  let rec partitions = function
    | [] -> []
    | ys ->
      let rec take n acc = function
        | rest when n = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | y :: rest -> take (n - 1) (y :: acc) rest
      in
      let seg, rest = take mem_budget [] ys in
      seg :: partitions rest
  in
  List.iter
    (fun segment ->
      M.incr c_pnhl_partition;
      let tbl = VTbl.create (max 16 (List.length segment)) in
      List.iter
        (fun y ->
          M.incr c_pnhl_build;
          VTbl.add tbl (row_key y) y)
        segment;
      Array.iteri
        (fun i x ->
          let elems = Value.as_set (Value.field x attr) in
          List.iter
            (fun e ->
              M.incr c_pnhl_probe;
              partial.(i) <- VTbl.find_all tbl (elem_key e) @ partial.(i))
            elems)
        xs)
    (partitions ys);
  Array.to_list
    (Array.mapi
       (fun i x -> Value.except x [ (into, Value.set partial.(i)) ])
       xs)

(* Parallel PNHL: the algorithm's segments are independent — each builds
   its own hash table and probes every left row against it — so they run
   as pool tasks, one partial-match array per segment, merged in segment
   order afterwards.  Per-segment work (builds, probes) is exactly the
   sequential loop's, so counter totals match [exec_pnhl] on the same
   budget; result rows canonicalize through [Value.set] per left row. *)
and exec_par_pnhl cat ~attr ~elem_key ~row_key ~into ~mem_budget ~left ~right =
  if mem_budget <= 0 then exec_error "pnhl: memory budget must be positive";
  let xs = rows cat left and ys = rows cat right in
  let row_key_s = param1_spawner cat ~var:"row" row_key in
  let elem_key_s = param1_spawner cat ~var:"elem" elem_key in
  let xs = Array.of_list xs in
  let rec segments = function
    | [] -> []
    | ys ->
      let rec take n acc = function
        | rest when n = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | y :: rest -> take (n - 1) (y :: acc) rest
      in
      let seg, rest = take mem_budget [] ys in
      seg :: segments rest
  in
  let segs = Array.of_list (segments ys) in
  let partials =
    Pool.run (Array.length segs) (fun s ->
        let row_key = row_key_s () and elem_key = elem_key_s () in
        M.incr c_pnhl_partition;
        let segment = segs.(s) in
        let tbl = VTbl.create (max 16 (List.length segment)) in
        List.iter
          (fun y ->
            M.incr c_pnhl_build;
            VTbl.add tbl (row_key y) y)
          segment;
        let partial = Array.make (Array.length xs) [] in
        Array.iteri
          (fun i x ->
            let elems = Value.as_set (Value.field x attr) in
            List.iter
              (fun e ->
                M.incr c_pnhl_probe;
                partial.(i) <- VTbl.find_all tbl (elem_key e) @ partial.(i))
              elems)
          xs;
        partial)
  in
  Array.to_list
    (Array.mapi
       (fun i x ->
         let ms =
           Array.fold_left (fun acc partial -> partial.(i) @ acc) [] partials
         in
         Value.except x [ (into, Value.set ms) ])
       xs)

(* Execute a plan, returning its result as a canonical set value. *)
let run cat p = Value.set (rows cat p)

(* Run [f] with a fresh collector installed and return its result together
   with the recorded samples in completion (post-order) order.  Collectors
   nest: the previous one is restored afterwards and does not observe the
   inner run. *)
let collect f =
  let c = { samples = []; stack = [] } in
  let saved = !collector in
  collector := Some c;
  let result = Fun.protect ~finally:(fun () -> collector := saved) (fun () -> f ()) in
  (result, List.rev c.samples)
