(* Physical query plans.

   A plan mirrors the top-level iterator structure of an ADL expression but
   fixes an algorithm for each join-family operator: nested loop, hash (on
   extracted equi-join keys), or sort-merge.  Parameter expressions inside
   operators (predicates, map bodies) are ADL expressions evaluated per
   tuple with the reference evaluator; what the engine changes is how the
   *iteration* is organized — which is exactly the paper's point: the same
   logical join admits many set-oriented implementations, while a nested
   subquery forces nested loops.

   Two operators implement Section 6.2:
   - [Pnhl]: the Partitioned Nested-Hashed-Loops algorithm of [DeLa92] for
     joining a set-valued attribute with a base table under a memory budget;
   - [Assembly]: the pointer-based implementation of the materialize
     operator of [BlMG93], dereferencing oid attributes through the extent's
     oid index. *)

open Njq_adl

type join_algo = Nested_loop | Hash | Sort_merge

(* Output discipline of a membership join: keep the left tuple (semi/anti),
   concatenate matching right tuples (inner), or group them under a new
   attribute (nest, with the function parameter applied to each match). *)
type member_kind =
  | MSemi
  | MAnti
  | MInner
  | MNest of { body : Expr.t; attr : string }

(* Equi-join keys extracted from a predicate: pairs (f(x), g(y)) such that
   the conjunct f(x) = g(y) appeared in the predicate. *)
type keys = (Expr.t * Expr.t) list

(* How an [IndexScan] addresses its index: a point lookup supplies one
   closed expression per indexed attribute; a range lookup bounds the
   leading attribute of a sorted index ([(expr, inclusive)] endpoints). *)
type index_lookup =
  | LPoint of Expr.t list
  | LRange of { lo : (Expr.t * bool) option; hi : (Expr.t * bool) option }

type t =
  | Scan of string
  | Filter of { var : string; pred : Expr.t; input : t }
  | IndexScan of {
      table : string;
      index : string; (* catalog index name *)
      var : string;
      lookup : index_lookup;
      residual : Expr.t; (* conjuncts the index cannot answer *)
      rename : (string * string) list; (* applied to fetched rows *)
    }
      (* Access-path replacement for Filter(Scan) — or Filter(Rename(Scan))
         when [rename] is non-empty: fetch only the rows the index says can
         match, rename their attributes, then apply the residual.  Emits
         exactly the replaced subplan's row list (catalog indexes return
         rows in canonical order). *)
  | IndexJoin of {
      kind : Expr.join_kind; (* Inner, Semi or Anti *)
      xvar : string;
      yvar : string;
      table : string; (* inner base table *)
      index : string; (* catalog index over [table] *)
      keys : Expr.t list; (* left-side probe exprs, one per indexed attr *)
      residual : Expr.t; (* join conjuncts beyond the indexed equalities *)
      rename : (string * string) list; (* applied to fetched inner rows *)
      left : t;
    }
      (* Index nested loops: for each left row, probe the inner table's
         index with the evaluated key expressions instead of building a
         hash table over the whole inner extent ([rename] absorbs a
         Rename over the inner scan).  Streams per outer row in the
         pipelined executor. *)
  | MapOp of { var : string; body : Expr.t; input : t }
  | ProjectOp of string list * t
  | FlattenOp of t
  | UnionOp of t * t
  | InterOp of t * t
  | DiffOp of t * t
  | ProductOp of t * t
  | JoinOp of {
      algo : join_algo;
      kind : Expr.join_kind;
      xvar : string;
      yvar : string;
      keys : keys;
      residual : Expr.t; (* conjuncts not covered by the keys *)
      left : t;
      right : t;
    }
  | NestjoinOp of {
      algo : join_algo;
      xvar : string;
      yvar : string;
      keys : keys;
      residual : Expr.t;
      body : Expr.t;
      attr : string;
      left : t;
      right : t;
    }
  | MemberJoin of {
      kind : member_kind;
      xvar : string;
      yvar : string;
      xset : Expr.t; (* set-valued expression over the left variable *)
      elem_var : string; (* binder for one element of [xset] *)
      elem_key : Expr.t; (* key of an element, over [elem_var] *)
      ykey : Expr.t; (* key of a right row, over [yvar] *)
      left : t;
      right : t;
    }
      (* Hash implementation of membership-style join predicates
         ('exists' z 'in' x.c . key(z) = key(y), or key(y) 'in' x.c): the
         right operand is hashed on its key and each left tuple probes with
         the keys of its set-valued attribute's elements — the probing
         pattern of the PNHL algorithm applied to join operators. *)
  | GraceJoin of {
      kind : Expr.join_kind;
      xvar : string;
      yvar : string;
      keys : keys; (* at least one; partitioning hashes the first key *)
      residual : Expr.t;
      mem_budget : int; (* max right rows hashed at once *)
      left : t;
      right : t;
    }
      (* Grace-style partitioned hash join: both operands are partitioned
         by the hash of the first key so that each right partition fits the
         memory budget, then each partition pair is hash-joined — the
         regular-join counterpart of PNHL's memory-constrained build. *)
  | RenameOp of (string * string) list * t
  | UnnestOp of string * t
  | NestOp of { attrs : string list; into : string; input : t }
  | DivideOp of t * t
  | Pnhl of {
      attr : string; (* set-valued attribute of the left rows *)
      elem_key : Expr.t; (* key of one element, free var "elem" *)
      row_key : Expr.t; (* key of a right row, free var "row" *)
      into : string; (* result attribute receiving the matched rows *)
      mem_budget : int; (* max right rows hashed at once (partitioning) *)
      left : t;
      right : t;
    }
  | Assembly of {
      cls : string; (* extent the references point into *)
      ref_attr : string; (* oid-valued attribute to dereference *)
      into : string; (* attribute receiving the referenced object *)
      input : t;
    }
  | ParJoinOp of {
      kind : Expr.join_kind;
      xvar : string;
      yvar : string;
      keys : keys; (* at least one; partitioning hashes the first key *)
      residual : Expr.t;
      partitions : int; (* fixed in the plan, not derived from the pool *)
      left : t;
      right : t;
    }
      (* Partitioned parallel hash join: both operands are hash-partitioned
         on the first key into [partitions] buckets, each bucket pair is
         hash-joined on its own pool domain, and the per-partition results
         are concatenated in partition order.  The partition count lives in
         the plan so results and work counters are identical whatever the
         domain count — parallelism only changes who runs which bucket. *)
  | ParNestjoinOp of {
      xvar : string;
      yvar : string;
      keys : keys;
      residual : Expr.t;
      body : Expr.t;
      attr : string;
      partitions : int;
      left : t;
      right : t;
    }
      (* Partitioned parallel hash nestjoin, same discipline as
         [ParJoinOp]: every left row lands in exactly one partition (its
         key hash), so its match group is complete within that bucket. *)
  | ParPnhl of {
      attr : string;
      elem_key : Expr.t;
      row_key : Expr.t;
      into : string;
      mem_budget : int; (* max right rows hashed at once (partitioning) *)
      left : t;
      right : t;
    }
      (* PNHL with the right-operand segments probed concurrently: each
         pool domain builds the hash table of one segment and probes all
         left rows against it; per-segment partial matches are merged in
         segment order, exactly as the sequential loop would. *)
  | ParFilter of { var : string; pred : Expr.t; input : t }
      (* Chunked parallel filter: the input rows are split into contiguous
         chunks, filtered concurrently, and re-concatenated in chunk order
         — the same row list as the sequential filter. *)
  | ParMapOp of { var : string; body : Expr.t; input : t }
      (* Chunked parallel map, same discipline as [ParFilter]. *)
  | EvalOp of Expr.t (* fallback: reference (nested-loop) evaluation *)
  | Materialized of Value.t list
      (* an already-computed intermediate result; produced by the
         instrumented executor, never by the planner *)

let algo_name = function
  | Nested_loop -> "nl"
  | Hash -> "hash"
  | Sort_merge -> "sortmerge"

let kind_name = function
  | Expr.Inner -> "join"
  | Expr.Semi -> "semijoin"
  | Expr.Anti -> "antijoin"
  | Expr.LeftOuter _ -> "outerjoin"

let pp_lookup ppf = function
  | LPoint keys ->
    Fmt.pf ppf "=(%a)" (Fmt.list ~sep:Fmt.comma Pretty.pp) keys
  | LRange { lo; hi } ->
    let bound op ppf = function
      | None -> ()
      | Some (e, incl) -> Fmt.pf ppf " %s%s %a" op (if incl then "=" else "") Pretty.pp e
    in
    Fmt.pf ppf "range%a%a" (bound ">") lo (bound "<") hi

let rec pp ppf = function
  | Scan t -> Fmt.pf ppf "scan(%s)" t
  | Filter { var; pred; input } ->
    Fmt.pf ppf "@[<2>filter[%s: %a](@,%a)@]" var Pretty.pp pred pp input
  | IndexScan { table; index; lookup; residual; rename; _ } ->
    Fmt.pf ppf "@[<2>idxscan[%s via %s: %a%s%s]@]" table index pp_lookup lookup
      (if Expr.is_true residual then "" else "+residual")
      (if rename = [] then "" else "+rename")
  | IndexJoin { kind; table; index; keys; residual; rename; left; _ } ->
    Fmt.pf ppf "@[<2>idx_%s[%s via %s, %d keys%s%s](@,%a)@]" (kind_name kind)
      table index (List.length keys)
      (if Expr.is_true residual then "" else "+residual")
      (if rename = [] then "" else "+rename")
      pp left
  | MapOp { var; body; input } ->
    Fmt.pf ppf "@[<2>map[%s: %a](@,%a)@]" var Pretty.pp body pp input
  | ProjectOp (attrs, input) ->
    Fmt.pf ppf "@[<2>project[%s](@,%a)@]" (String.concat "," attrs) pp input
  | FlattenOp input -> Fmt.pf ppf "@[<2>flatten(@,%a)@]" pp input
  | UnionOp (a, b) -> Fmt.pf ppf "@[<2>union(@,%a,@ %a)@]" pp a pp b
  | InterOp (a, b) -> Fmt.pf ppf "@[<2>inter(@,%a,@ %a)@]" pp a pp b
  | DiffOp (a, b) -> Fmt.pf ppf "@[<2>diff(@,%a,@ %a)@]" pp a pp b
  | ProductOp (a, b) -> Fmt.pf ppf "@[<2>product(@,%a,@ %a)@]" pp a pp b
  | JoinOp { algo; kind; keys; residual; left; right; _ } ->
    Fmt.pf ppf "@[<2>%s_%s[%d keys%s](@,%a,@ %a)@]" (algo_name algo)
      (kind_name kind) (List.length keys)
      (if Expr.is_true residual then "" else "+residual")
      pp left pp right
  | NestjoinOp { algo; keys; attr; left; right; _ } ->
    Fmt.pf ppf "@[<2>%s_nestjoin[%d keys → %s](@,%a,@ %a)@]" (algo_name algo)
      (List.length keys) attr pp left pp right
  | MemberJoin { kind; xset; left; right; _ } ->
    let kname =
      match kind with
      | MSemi -> "semijoin"
      | MAnti -> "antijoin"
      | MInner -> "join"
      | MNest { attr; _ } -> "nestjoin→" ^ attr
    in
    Fmt.pf ppf "@[<2>member_%s[%a](@,%a,@ %a)@]" kname Pretty.pp xset pp left
      pp right
  | RenameOp (pairs, input) ->
    Fmt.pf ppf "@[<2>rename[%s](@,%a)@]"
      (String.concat ","
         (List.map (fun (o, n) -> Printf.sprintf "%s->%s" o n) pairs))
      pp input
  | GraceJoin { kind; keys; mem_budget; left; right; _ } ->
    Fmt.pf ppf "@[<2>grace_%s[%d keys, mem=%d](@,%a,@ %a)@]" (kind_name kind)
      (List.length keys) mem_budget pp left pp right
  | UnnestOp (a, input) -> Fmt.pf ppf "@[<2>unnest[%s](@,%a)@]" a pp input
  | NestOp { attrs; into; input } ->
    Fmt.pf ppf "@[<2>nest[%s→%s](@,%a)@]" (String.concat "," attrs) into pp input
  | DivideOp (a, b) -> Fmt.pf ppf "@[<2>divide(@,%a,@ %a)@]" pp a pp b
  | Pnhl { attr; into; mem_budget; left; right; _ } ->
    Fmt.pf ppf "@[<2>pnhl[%s→%s, mem=%d](@,%a,@ %a)@]" attr into mem_budget pp
      left pp right
  | Assembly { cls; ref_attr; into; input } ->
    Fmt.pf ppf "@[<2>assembly[%s.%s→%s](@,%a)@]" cls ref_attr into pp input
  | ParJoinOp { kind; keys; residual; partitions; left; right; _ } ->
    Fmt.pf ppf "@[<2>par_%s[%d keys%s, %d part.](@,%a,@ %a)@]" (kind_name kind)
      (List.length keys)
      (if Expr.is_true residual then "" else "+residual")
      partitions pp left pp right
  | ParNestjoinOp { keys; attr; partitions; left; right; _ } ->
    Fmt.pf ppf "@[<2>par_nestjoin[%d keys → %s, %d part.](@,%a,@ %a)@]"
      (List.length keys) attr partitions pp left pp right
  | ParPnhl { attr; into; mem_budget; left; right; _ } ->
    Fmt.pf ppf "@[<2>par_pnhl[%s→%s, mem=%d](@,%a,@ %a)@]" attr into mem_budget
      pp left pp right
  | ParFilter { var; pred; input } ->
    Fmt.pf ppf "@[<2>par_filter[%s: %a](@,%a)@]" var Pretty.pp pred pp input
  | ParMapOp { var; body; input } ->
    Fmt.pf ppf "@[<2>par_map[%s: %a](@,%a)@]" var Pretty.pp body pp input
  | EvalOp e -> Fmt.pf ppf "@[<2>eval(@,%a)@]" Pretty.pp e
  | Materialized rows -> Fmt.pf ppf "materialized(%d rows)" (List.length rows)

let to_string p = Fmt.str "@[%a@]" pp p

(* Stable identity of a physical plan: the hash of its rendered tree.
   Two queries served by the same plan share a fingerprint, so `njq top`
   can aggregate a query log per plan and `explain --analyze` output
   joins against it. *)
let fingerprint p = Njq_obs.Qlog.hash_hex (to_string p)

(* Short operator label for instrumented reports. *)
let node_label = function
  | Scan t -> "scan " ^ t
  | IndexScan { table; _ } -> "idxscan " ^ table
  | IndexJoin { kind; _ } -> "idx_" ^ kind_name kind
  | Filter _ -> "filter"
  | MapOp _ -> "map"
  | ProjectOp _ -> "project"
  | FlattenOp _ -> "flatten"
  | UnionOp _ -> "union"
  | InterOp _ -> "inter"
  | DiffOp _ -> "diff"
  | ProductOp _ -> "product"
  | JoinOp { algo; kind; _ } -> algo_name algo ^ "_" ^ kind_name kind
  | NestjoinOp { algo; _ } -> algo_name algo ^ "_nestjoin"
  | MemberJoin { kind = MSemi; _ } -> "member_semijoin"
  | MemberJoin { kind = MAnti; _ } -> "member_antijoin"
  | MemberJoin { kind = MInner; _ } -> "member_join"
  | MemberJoin { kind = MNest _; _ } -> "member_nestjoin"
  | RenameOp _ -> "rename"
  | GraceJoin { kind; _ } -> "grace_" ^ kind_name kind
  | UnnestOp (a, _) -> "unnest " ^ a
  | NestOp { into; _ } -> "nest →" ^ into
  | DivideOp _ -> "divide"
  | Pnhl _ -> "pnhl"
  | Assembly { cls; _ } -> "assembly " ^ cls
  | ParJoinOp { kind; _ } -> "par_" ^ kind_name kind
  | ParNestjoinOp _ -> "par_nestjoin"
  | ParPnhl _ -> "par_pnhl"
  | ParFilter _ -> "par_filter"
  | ParMapOp _ -> "par_map"
  | EvalOp _ -> "eval"
  | Materialized _ -> "materialized"

(* Immediate sub-plans, left to right. *)
let children = function
  | Scan _ | EvalOp _ | Materialized _ | IndexScan _ -> []
  | IndexJoin { left; _ } -> [ left ]
  | Filter { input; _ } | MapOp { input; _ } | ProjectOp (_, input)
  | FlattenOp input | RenameOp (_, input) | UnnestOp (_, input)
  | NestOp { input; _ } | Assembly { input; _ } | ParFilter { input; _ }
  | ParMapOp { input; _ } -> [ input ]
  | UnionOp (a, b) | InterOp (a, b) | DiffOp (a, b) | ProductOp (a, b)
  | DivideOp (a, b) -> [ a; b ]
  | JoinOp { left; right; _ } | NestjoinOp { left; right; _ }
  | MemberJoin { left; right; _ } | Pnhl { left; right; _ }
  | GraceJoin { left; right; _ } | ParJoinOp { left; right; _ }
  | ParNestjoinOp { left; right; _ } | ParPnhl { left; right; _ } ->
    [ left; right ]

(* Structural plan equality.  The type is first-order (expressions and
   values are themselves structural), so [Stdlib.( = )] is the right
   notion; named so call sites read as plan comparison and survive a
   future move to hash-consed nodes. *)
let equal (a : t) (b : t) = Stdlib.( = ) a b

(* Pre-order traversal over every node of the plan tree. *)
let rec iter_nodes f p =
  f p;
  List.iter (iter_nodes f) (children p)

(* ------------------------------------------------------------------ *)
(* Pipeline shape of the push-based executor (see [Exec]).  The two     *)
(* predicates below are the single source of truth for which edges the  *)
(* pipelined executor fuses; EXPLAIN renders them and [Exec.push]       *)
(* consults [streams_output] to decide fusion, so the annotation cannot *)
(* drift from the execution.                                            *)
(* ------------------------------------------------------------------ *)

(* Does the node stream its output rows one at a time into its consumer
   (true), or is it a pipeline breaker that materializes its full result
   before the consumer sees a row (false)?  Breakers are exactly the
   operators whose semantics need the whole input: sort-merge runs,
   grouping, division, PNHL/Grace partitioning, and the parallel
   operators' partition buffers. *)
let streams_output = function
  | Scan _ | Filter _ | MapOp _ | ProjectOp _ | FlattenOp _ | UnionOp _
  | InterOp _ | DiffOp _ | ProductOp _ | MemberJoin _ | RenameOp _
  | UnnestOp _ | Assembly _ | ParFilter _ | ParMapOp _ | EvalOp _
  | Materialized _ | IndexScan _ | IndexJoin _ ->
    true
  | JoinOp { algo = Nested_loop | Hash; _ }
  | NestjoinOp { algo = Nested_loop | Hash; _ } ->
    true
  | JoinOp { algo = Sort_merge; _ } | NestjoinOp { algo = Sort_merge; _ } ->
    false
  | GraceJoin _ | NestOp _ | DivideOp _ | Pnhl _ | ParJoinOp _
  | ParNestjoinOp _ | ParPnhl _ ->
    false

(* Per child edge (parallel to [children]): [true] when the pipelined
   executor consumes that child row by row without ever forming its result
   list (a fused edge), [false] when the child's rows are materialized
   first — into a hash build table, a sort buffer, a chunk array or a
   partition buffer. *)
let streamed_inputs = function
  | Scan _ | EvalOp _ | Materialized _ | IndexScan _ -> []
  | Filter _ | MapOp _ | ProjectOp (_, _) | FlattenOp _ | RenameOp (_, _)
  | UnnestOp (_, _) | NestOp _ | Assembly _ | IndexJoin _ ->
    [ true ]
  | ParFilter _ | ParMapOp _ -> [ false ]
  | UnionOp (_, _) -> [ true; true ]
  | InterOp (_, _) | DiffOp (_, _) | ProductOp (_, _) -> [ true; false ]
  | JoinOp { algo = Nested_loop | Hash; _ }
  | NestjoinOp { algo = Nested_loop | Hash; _ }
  | MemberJoin _ ->
    [ true; false ]
  | JoinOp { algo = Sort_merge; _ } | NestjoinOp { algo = Sort_merge; _ }
  | GraceJoin _ | DivideOp (_, _) | Pnhl _ | ParPnhl _ | ParJoinOp _
  | ParNestjoinOp _ ->
    [ false; false ]

(* Pipeline-boundary view of a plan: one node per line, each child edge
   marked "~>" (fused: rows flow one at a time into the parent's loop) or
   "=>" (materialized: the parent buffers this input before producing
   output).  Breaker nodes are suffixed with "[breaker]".  When [batch]
   is given (the batched executor is active), a header line states the
   batch size — fused "~>" edges then carry column batches of up to that
   many rows instead of single rows, with the same boundaries. *)
let pp_pipelines ?batch ppf p =
  (match batch with
   | Some n ->
     Fmt.pf ppf "batched: fused edges carry up to %d rows per batch@." n
   | None -> ());
  let rec go depth edge p =
    let indent = String.make (2 * depth) ' ' in
    let marker =
      match edge with
      | None -> ""
      | Some true -> "~> "
      | Some false -> "=> "
    in
    Fmt.pf ppf "%s%s%s%s@." indent marker (node_label p)
      (if streams_output p then "" else "  [breaker]");
    List.iter2
      (fun c streamed -> go (depth + 1) (Some streamed) c)
      (children p) (streamed_inputs p)
  in
  go 0 None p

(* Rebuild the whole plan with [f] applied to every embedded ADL
   expression (predicates, map/nestjoin bodies, join keys, index lookups).
   The structure — operators, algorithms, binder names — is untouched, so
   a cached physical plan can be re-targeted by expression substitution
   alone; the serve layer uses this to bind prepared-query parameters
   ([Param i] → [Const v]) into a plan derived once from the template. *)
let rec map_exprs f p =
  let recur = map_exprs f in
  match p with
  | Scan _ | Materialized _ -> p
  | EvalOp e -> EvalOp (f e)
  | Filter fl -> Filter { fl with pred = f fl.pred; input = recur fl.input }
  | IndexScan s ->
    let lookup =
      match s.lookup with
      | LPoint keys -> LPoint (List.map f keys)
      | LRange { lo; hi } ->
        let bound = Option.map (fun (e, incl) -> (f e, incl)) in
        LRange { lo = bound lo; hi = bound hi }
    in
    IndexScan { s with lookup; residual = f s.residual }
  | IndexJoin j ->
    IndexJoin
      { j with keys = List.map f j.keys; residual = f j.residual;
        left = recur j.left }
  | MapOp m -> MapOp { m with body = f m.body; input = recur m.input }
  | ProjectOp (attrs, input) -> ProjectOp (attrs, recur input)
  | FlattenOp input -> FlattenOp (recur input)
  | UnionOp (a, b) -> UnionOp (recur a, recur b)
  | InterOp (a, b) -> InterOp (recur a, recur b)
  | DiffOp (a, b) -> DiffOp (recur a, recur b)
  | ProductOp (a, b) -> ProductOp (recur a, recur b)
  | DivideOp (a, b) -> DivideOp (recur a, recur b)
  | RenameOp (pairs, input) -> RenameOp (pairs, recur input)
  | UnnestOp (a, input) -> UnnestOp (a, recur input)
  | NestOp n -> NestOp { n with input = recur n.input }
  | Assembly a -> Assembly { a with input = recur a.input }
  | JoinOp j ->
    JoinOp
      { j with keys = List.map (fun (a, b) -> (f a, f b)) j.keys;
        residual = f j.residual; left = recur j.left; right = recur j.right }
  | NestjoinOp j ->
    NestjoinOp
      { j with keys = List.map (fun (a, b) -> (f a, f b)) j.keys;
        residual = f j.residual; body = f j.body;
        left = recur j.left; right = recur j.right }
  | MemberJoin j ->
    let kind =
      match j.kind with
      | MNest { body; attr } -> MNest { body = f body; attr }
      | (MSemi | MAnti | MInner) as k -> k
    in
    MemberJoin
      { j with kind; xset = f j.xset; elem_key = f j.elem_key;
        ykey = f j.ykey; left = recur j.left; right = recur j.right }
  | GraceJoin j ->
    GraceJoin
      { j with keys = List.map (fun (a, b) -> (f a, f b)) j.keys;
        residual = f j.residual; left = recur j.left; right = recur j.right }
  | Pnhl j ->
    Pnhl
      { j with elem_key = f j.elem_key; row_key = f j.row_key;
        left = recur j.left; right = recur j.right }
  | ParJoinOp j ->
    ParJoinOp
      { j with keys = List.map (fun (a, b) -> (f a, f b)) j.keys;
        residual = f j.residual; left = recur j.left; right = recur j.right }
  | ParNestjoinOp j ->
    ParNestjoinOp
      { j with keys = List.map (fun (a, b) -> (f a, f b)) j.keys;
        residual = f j.residual; body = f j.body;
        left = recur j.left; right = recur j.right }
  | ParPnhl j ->
    ParPnhl
      { j with elem_key = f j.elem_key; row_key = f j.row_key;
        left = recur j.left; right = recur j.right }
  | ParFilter fl ->
    ParFilter { fl with pred = f fl.pred; input = recur fl.input }
  | ParMapOp m -> ParMapOp { m with body = f m.body; input = recur m.input }

(* Rebuild a node with new children (same arity as [children]). *)
let with_children p cs =
  match p, cs with
  | (Scan _ | EvalOp _ | Materialized _ | IndexScan _), [] -> p
  | IndexJoin j, [ c ] -> IndexJoin { j with left = c }
  | Filter f, [ c ] -> Filter { f with input = c }
  | MapOp m, [ c ] -> MapOp { m with input = c }
  | ProjectOp (attrs, _), [ c ] -> ProjectOp (attrs, c)
  | FlattenOp _, [ c ] -> FlattenOp c
  | RenameOp (pairs, _), [ c ] -> RenameOp (pairs, c)
  | UnnestOp (a, _), [ c ] -> UnnestOp (a, c)
  | NestOp n, [ c ] -> NestOp { n with input = c }
  | Assembly a, [ c ] -> Assembly { a with input = c }
  | UnionOp _, [ a; b ] -> UnionOp (a, b)
  | InterOp _, [ a; b ] -> InterOp (a, b)
  | DiffOp _, [ a; b ] -> DiffOp (a, b)
  | ProductOp _, [ a; b ] -> ProductOp (a, b)
  | DivideOp _, [ a; b ] -> DivideOp (a, b)
  | JoinOp j, [ a; b ] -> JoinOp { j with left = a; right = b }
  | NestjoinOp j, [ a; b ] -> NestjoinOp { j with left = a; right = b }
  | MemberJoin j, [ a; b ] -> MemberJoin { j with left = a; right = b }
  | Pnhl j, [ a; b ] -> Pnhl { j with left = a; right = b }
  | GraceJoin j, [ a; b ] -> GraceJoin { j with left = a; right = b }
  | ParFilter f, [ c ] -> ParFilter { f with input = c }
  | ParMapOp m, [ c ] -> ParMapOp { m with input = c }
  | ParJoinOp j, [ a; b ] -> ParJoinOp { j with left = a; right = b }
  | ParNestjoinOp j, [ a; b ] -> ParNestjoinOp { j with left = a; right = b }
  | ParPnhl j, [ a; b ] -> ParPnhl { j with left = a; right = b }
  | _ -> invalid_arg "Plan.with_children: arity mismatch"

(* Replace every [Scan name] node for which [f name] answers with the
   replacement plan; other scans and all structure are untouched.  The
   serve layer uses this to splice an in-memory parameter table
   ([Materialized rows]) into a cached batched plan without registering
   the rows in the catalog — and so without an epoch bump per batch. *)
let rec map_scans f p =
  match p with
  | Scan name -> (match f name with Some q -> q | None -> p)
  | _ -> with_children p (List.map (map_scans f) (children p))
