(* Abstract syntax of OOSQL, the SQL-like orthogonal query language of the
   paper (Section 2).  Nesting is allowed in the select-, from- and
   where-clause; predicates may use quantifiers and set comparison
   operators; expressions in the from-clause may be base tables (class
   extensions) as well as set-valued attributes. *)

type pos = { line : int; col : int }

let dummy_pos = { line = 0; col = 0 }

(* Schema definitions *)

type sqltype =
  | SBool
  | SInt
  | SFloat
  | SString
  | SDate
  | SClass of string (* reference to a class by class name *)
  | STuple of (string * sqltype) list
  | SSet of sqltype

type class_def = {
  class_name : string;
  extent : string; (* name of the class extension (base table) *)
  attributes : (string * sqltype) list;
}

type schema = class_def list

(* Query expressions *)

type lit =
  | LBool of bool
  | LInt of int
  | LFloat of float
  | LString of string

type binop =
  (* arithmetic *)
  | Add | Sub | Mul | Div | Mod
  (* comparison; Eq/Neq double as set equality, resolved by typing *)
  | Eq | Neq | Lt | Le | Gt | Ge
  (* boolean *)
  | And | Or
  (* set operations *)
  | Union | Intersect | Except
  (* set comparisons *)
  | In | NotIn | SubsetEq | SubsetOp | SupsetEq | SupsetOp | Contains

type quant = QExists | QForall

type agg = ACount | ASum | AMin | AMax | AAvg

type expr =
  | ELit of lit * pos
  | EParam of int * pos (* ?i prepared-query placeholder *)
  | EVar of string * pos (* variable or class-extent name *)
  | EPath of expr * string * pos (* e.a, with implicit dereferencing *)
  | ETuple of (string * expr) list * pos
  | ESet of expr list * pos
  | EBin of binop * expr * expr * pos
  | ENot of expr * pos
  | EQuant of quant * string * expr * expr option * pos
      (* exists/forall x in e [: p]; a missing predicate means emptiness
         testing, as in the paper's Example Query 3.2 *)
  | EAgg of agg * expr * pos
  | ESfw of sfw * pos

and sfw = {
  proj : expr; (* the select-clause expression *)
  froms : (string * expr) list; (* from x1 in e1, x2 in e2, ... *)
  where : expr option;
}

let pos_of = function
  | ELit (_, p) | EParam (_, p)
  | EVar (_, p) | EPath (_, _, p) | ETuple (_, p) | ESet (_, p)
  | EBin (_, _, _, p) | ENot (_, p) | EQuant (_, _, _, _, p) | EAgg (_, _, p)
  | ESfw (_, p) -> p

(* A parsed program: optional schema declarations, then named view
   definitions (the paper's "named intermediate tables", whose expansion
   produces nesting in the from-clause), then an optional query. *)
type program = {
  classes : schema;
  defines : (string * expr) list;
  query : expr option;
}
