(* Type-directed translation of OOSQL into ADL (Section 3 of the paper).

   The translation is "simple, almost one-to-one": the sfw-block becomes a
   map over a selection,

     select e1 from x in e2 where e3   =>   alpha[x : e1](sigma[x : e3](e2))

   and everything else maps to its algebraic counterpart.  Typing and
   translation are interleaved because the algebraic operator depends on the
   type: '=' is Cmp on atoms and SetCmp on sets, 'e.a' is a field selection
   on tuples but goes through [Deref] (the materialize operator) on class
   references, multiple from-bindings become nested maps flattened at the
   end, and integer literals compared against dates are coerced. *)

open Njq_adl

exception Translate_error of string * Ast.pos

let err pos fmt = Fmt.kstr (fun s -> raise (Translate_error (s, pos))) fmt

type ctx = {
  schema : Ast.schema;
  extents : (string * Vtype.t) list; (* extent name -> row type *)
}

let make_ctx (schema : Ast.schema) : ctx =
  { schema;
    extents =
      List.map (fun c -> (c.Ast.extent, Schema.row_type schema c)) schema }

type env = (string * Vtype.t) list

let is_set_type = function Vtype.TSet _ | Vtype.TAny -> true | _ -> false

let elem_type pos = function
  | Vtype.TSet t -> t
  | Vtype.TAny -> Vtype.TAny
  | t -> err pos "expected a set, got %s" (Vtype.show t)

(* Coerce an integer-literal-typed operand to date when compared with a
   date, following the paper's writing of dates as literals (940101). *)
let coerce_date (e1, t1) (e2, t2) =
  match t1, t2, e1, e2 with
  | Vtype.TDate, Vtype.TInt, _, Expr.Const (Value.VInt n) ->
    ((e1, t1), (Expr.Const (Value.date n), Vtype.TDate))
  | Vtype.TInt, Vtype.TDate, Expr.Const (Value.VInt n), _ ->
    ((Expr.Const (Value.date n), Vtype.TDate), (e2, t2))
  | _ -> ((e1, t1), (e2, t2))

let rec translate (ctx : ctx) (env : env) (e : Ast.expr) : Expr.t * Vtype.t =
  match e with
  | Ast.ELit (l, _) ->
    (match l with
     | Ast.LBool b -> (Expr.Const (Value.bool b), Vtype.TBool)
     | Ast.LInt n -> (Expr.Const (Value.int n), Vtype.TInt)
     | Ast.LFloat f -> (Expr.Const (Value.float f), Vtype.TFloat)
     | Ast.LString s -> (Expr.Const (Value.string s), Vtype.TString))
  | Ast.EParam (i, _) ->
    (* The value (and thus the type) arrives at bind time; TAny unifies
       with every use site. *)
    (Expr.Param i, Vtype.TAny)
  | Ast.EVar (x, pos) ->
    (match List.assoc_opt x env with
     | Some t -> (Expr.Var x, t)
     | None ->
       (match List.assoc_opt x ctx.extents with
        | Some row -> (Expr.Table x, Vtype.TSet row)
        | None ->
          (* Allow referring to the extent through the class name too. *)
          (match List.find_opt (fun c -> String.equal c.Ast.class_name x) ctx.schema with
           | Some c ->
             (Expr.Table c.Ast.extent,
              Vtype.TSet (List.assoc c.Ast.extent ctx.extents))
           | None -> err pos "unbound variable or unknown extent %s" x)))
  | Ast.EPath (base, a, pos) ->
    let b, tb = translate ctx env base in
    resolve_path ctx pos (b, tb) a
  | Ast.ETuple (fields, pos) ->
    let rec check_dup = function
      | (n, _) :: rest ->
        if List.mem_assoc n rest then err pos "duplicate tuple field %s" n
        else check_dup rest
      | [] -> ()
    in
    check_dup fields;
    let translated = List.map (fun (n, fe) -> (n, translate ctx env fe)) fields in
    ( Expr.Tuple (List.map (fun (n, (fe, _)) -> (n, fe)) translated),
      Vtype.tuple (List.map (fun (n, (_, t)) -> (n, t)) translated) )
  | Ast.ESet (elems, pos) ->
    let translated = List.map (translate ctx env) elems in
    let t =
      List.fold_left
        (fun acc (_, t) ->
          if Vtype.compat acc t then Vtype.lub acc t
          else err pos "heterogeneous set literal: %s vs %s" (Vtype.show acc) (Vtype.show t))
        Vtype.TAny translated
    in
    (Expr.SetLit (List.map fst translated), Vtype.TSet t)
  | Ast.EBin (op, a, b, pos) -> translate_bin ctx env op a b pos
  | Ast.ENot (a, pos) ->
    let a', ta = translate ctx env a in
    if not (Vtype.compat ta Vtype.TBool) then
      err pos "'not' applied to non-boolean %s" (Vtype.show ta);
    (Expr.Not a', Vtype.TBool)
  | Ast.EQuant (q, x, range, pred, pos) ->
    let range', tr = translate ctx env range in
    let elem = elem_type pos tr in
    let pred' =
      match pred with
      | None ->
        (match q with
         | Ast.QExists -> Expr.true_
         | Ast.QForall -> err pos "'forall' requires a predicate after ':'")
      | Some p ->
        let p', tp = translate ctx ((x, elem) :: env) p in
        if not (Vtype.compat tp Vtype.TBool) then
          err pos "quantifier predicate must be boolean, got %s" (Vtype.show tp);
        p'
    in
    let quant = match q with Ast.QExists -> Expr.Exists | Ast.QForall -> Expr.Forall in
    (Expr.Quant (quant, x, range', pred'), Vtype.TBool)
  | Ast.EAgg (agg, src, pos) ->
    let src', ts = translate ctx env src in
    if not (is_set_type ts) then
      err pos "aggregate over non-set type %s" (Vtype.show ts);
    let elem = elem_type pos ts in
    let is_num = function Vtype.TInt | Vtype.TFloat | Vtype.TAny -> true | _ -> false in
    (match agg with
     | Ast.ACount -> (Expr.Agg (Expr.Count, src'), Vtype.TInt)
     | Ast.ASum | Ast.AMin | Ast.AMax ->
       if not (is_num elem) then
         err pos "numeric aggregate over set of %s" (Vtype.show elem);
       let op =
         match agg with
         | Ast.ASum -> Expr.Sum
         | Ast.AMin -> Expr.Min
         | _ -> Expr.Max
       in
       (Expr.Agg (op, src'), match elem with Vtype.TAny -> Vtype.TInt | t -> t)
     | Ast.AAvg ->
       if not (is_num elem) then err pos "avg over set of %s" (Vtype.show elem);
       (Expr.Agg (Expr.Avg, src'), Vtype.TFloat))
  | Ast.ESfw (sfw, pos) -> translate_sfw ctx env sfw pos

(* Attribute selection with implicit dereferencing of class references: the
   materialize operator in logical form. *)
and resolve_path ctx pos (b, tb) a =
  match tb with
  | Vtype.TTuple _ ->
    if Vtype.has_field tb a then (Expr.Field (b, a), Vtype.field tb a)
    else err pos "no attribute %s in %s" a (Vtype.show tb)
  | Vtype.TRef extent ->
    (match List.assoc_opt extent ctx.extents with
     | Some row ->
       if Vtype.has_field row a then
         (Expr.Field (Expr.Deref (extent, b), a), Vtype.field row a)
       else err pos "no attribute %s in objects of extent %s" a extent
     | None -> err pos "reference into unknown extent %s" extent)
  | t -> err pos "attribute %s selected from non-object type %s" a (Vtype.show t)

and translate_bin ctx env op a b pos =
  let ta = translate ctx env a and tb = translate ctx env b in
  let (a', ka), (b', kb) = coerce_date ta tb in
  let bool_result e = (e, Vtype.TBool) in
  let require_compat () =
    if not (Vtype.compat ka kb) then
      err pos "operands of incompatible types %s and %s" (Vtype.show ka) (Vtype.show kb)
  in
  let require_sets () =
    if not (is_set_type ka && is_set_type kb) then
      err pos "set operation requires set operands, got %s and %s" (Vtype.show ka)
        (Vtype.show kb)
  in
  match op with
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod ->
    (* TAny admits parameter placeholders, whose numeric type arrives at
       bind time; the result type narrows to the known side. *)
    let is_num = function
      | Vtype.TInt | Vtype.TFloat | Vtype.TAny -> true
      | _ -> false
    in
    if not (is_num ka && is_num kb) then
      err pos "arithmetic on non-numeric types %s and %s" (Vtype.show ka) (Vtype.show kb);
    require_compat ();
    let aop =
      match op with
      | Ast.Add -> Expr.Add
      | Ast.Sub -> Expr.Sub
      | Ast.Mul -> Expr.Mul
      | Ast.Div -> Expr.Div
      | _ -> Expr.Mod
    in
    (Expr.Arith (aop, a', b'), (match ka with Vtype.TAny -> kb | _ -> ka))
  | Ast.Eq | Ast.Neq ->
    require_compat ();
    if is_set_type ka && is_set_type kb then
      bool_result
        (Expr.SetCmp ((if op = Ast.Eq then Expr.SetEq else Expr.SetNeq), a', b'))
    else
      bool_result (Expr.Cmp ((if op = Ast.Eq then Expr.Eq else Expr.Neq), a', b'))
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
    require_compat ();
    let cop =
      match op with
      | Ast.Lt -> Expr.Lt
      | Ast.Le -> Expr.Le
      | Ast.Gt -> Expr.Gt
      | _ -> Expr.Ge
    in
    bool_result (Expr.Cmp (cop, a', b'))
  | Ast.And | Ast.Or ->
    if not (Vtype.compat ka Vtype.TBool && Vtype.compat kb Vtype.TBool) then
      err pos "boolean connective on %s and %s" (Vtype.show ka) (Vtype.show kb);
    bool_result (if op = Ast.And then Expr.And (a', b') else Expr.Or (a', b'))
  | Ast.Union | Ast.Intersect | Ast.Except ->
    require_sets ();
    require_compat ();
    let t = Vtype.lub ka kb in
    (match op with
     | Ast.Union -> (Expr.Union (a', b'), t)
     | Ast.Intersect -> (Expr.Inter (a', b'), t)
     | _ -> (Expr.Diff (a', b'), t))
  | Ast.In | Ast.NotIn ->
    let elem = elem_type pos kb in
    if not (Vtype.compat ka elem) then
      err pos "'in': %s cannot be an element of a set of %s" (Vtype.show ka)
        (Vtype.show elem);
    bool_result
      (Expr.SetCmp ((if op = Ast.In then Expr.Mem else Expr.NotMem), a', b'))
  | Ast.SubsetEq | Ast.SubsetOp | Ast.SupsetEq | Ast.SupsetOp ->
    require_sets ();
    require_compat ();
    let sop =
      match op with
      | Ast.SubsetEq -> Expr.SubsetEq
      | Ast.SubsetOp -> Expr.Subset
      | Ast.SupsetEq -> Expr.SupsetEq
      | _ -> Expr.Supset
    in
    bool_result (Expr.SetCmp (sop, a', b'))
  | Ast.Contains ->
    let elem = elem_type pos ka in
    if not (Vtype.compat kb elem) then
      err pos "'contains': %s cannot be an element of a set of %s" (Vtype.show kb)
        (Vtype.show elem);
    bool_result (Expr.SetCmp (Expr.Ni, a', b'))

(* The sfw-block.  One from-binding maps to alpha over sigma; additional
   bindings become nested maps whose set-of-sets result is flattened, with
   the where-clause evaluated at the innermost level (equivalent to a
   selection over the product, but directly in the paper's iterator
   style). *)
and translate_sfw ctx env { Ast.proj; froms; where } pos =
  match froms with
  | [] -> err pos "empty from-clause"
  | [ (x, src) ] ->
    let src', ts = translate ctx env src in
    if not (is_set_type ts) then
      err pos "from-clause operand must be a set, got %s" (Vtype.show ts);
    let elem = elem_type pos ts in
    let env' = (x, elem) :: env in
    let filtered =
      match where with
      | None -> src'
      | Some w ->
        let w', tw = translate ctx env' w in
        if not (Vtype.compat tw Vtype.TBool) then
          err pos "where-clause must be boolean, got %s" (Vtype.show tw);
        Expr.Select { var = x; pred = w'; src = src' }
    in
    let body, tbody = translate ctx env' proj in
    (Expr.Map { var = x; body; src = filtered }, Vtype.TSet tbody)
  | (x, src) :: rest ->
    let src', ts = translate ctx env src in
    if not (is_set_type ts) then
      err pos "from-clause operand must be a set, got %s" (Vtype.show ts);
    let elem = elem_type pos ts in
    let env' = (x, elem) :: env in
    let inner, tinner =
      translate_sfw ctx env' { Ast.proj; froms = rest; where } pos
    in
    (Expr.Flatten (Expr.Map { var = x; body = inner; src = src' }), tinner)

(* Entry point: translate a closed OOSQL query under a schema.  Returns the
   ADL expression and its type. *)
let query (schema : Ast.schema) (q : Ast.expr) : Expr.t * Vtype.t =
  Njq_obs.Span.with_span "translate" (fun () -> translate (make_ctx schema) [] q)

(* Parse and translate in one step. *)
let query_string (schema : Ast.schema) (src : string) : Expr.t * Vtype.t =
  query schema (Parser.parse_query src)
