(* Hand-written lexer for OOSQL.  Produces a token array with positions;
   the parser indexes into it with one-token lookahead. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | PARAM of int  (* ?0 ?1 ... prepared-query placeholder *)
  (* punctuation *)
  | LPAREN | RPAREN
  | LBRACE | RBRACE
  | COMMA | COLON | SEMI | DOT
  | EQ | NEQ | LT | LE | GT | GE
  | PLUS | MINUS | STAR | SLASH | PERCENT
  (* keywords *)
  | KW_SELECT | KW_FROM | KW_WHERE | KW_IN | KW_NOT
  | KW_AND | KW_OR | KW_EXISTS | KW_FORALL
  | KW_UNION | KW_INTERSECT | KW_EXCEPT
  | KW_SUBSET | KW_SUBSETEQ | KW_SUPSET | KW_SUPSETEQ | KW_CONTAINS
  | KW_COUNT | KW_SUM | KW_MIN | KW_MAX | KW_AVG
  | KW_TRUE | KW_FALSE
  | KW_CLASS | KW_WITH | KW_EXTENSION | KW_ATTRIBUTES | KW_END
  | KW_DEFINE | KW_AS
  | KW_INT | KW_FLOAT | KW_STRING | KW_BOOL | KW_DATE
  | EOF

type located = { tok : token; pos : Ast.pos }

exception Lex_error of string * Ast.pos

let keyword_table =
  [ ("select", KW_SELECT); ("from", KW_FROM); ("where", KW_WHERE);
    ("in", KW_IN); ("not", KW_NOT); ("and", KW_AND); ("or", KW_OR);
    ("exists", KW_EXISTS); ("forall", KW_FORALL); ("union", KW_UNION);
    ("intersect", KW_INTERSECT); ("except", KW_EXCEPT);
    ("subset", KW_SUBSET); ("subseteq", KW_SUBSETEQ);
    ("supset", KW_SUPSET); ("supseteq", KW_SUPSETEQ);
    ("contains", KW_CONTAINS); ("count", KW_COUNT); ("sum", KW_SUM);
    ("min", KW_MIN); ("max", KW_MAX); ("avg", KW_AVG); ("true", KW_TRUE);
    ("false", KW_FALSE); ("class", KW_CLASS); ("with", KW_WITH);
    ("extension", KW_EXTENSION); ("attributes", KW_ATTRIBUTES);
    ("end", KW_END); ("define", KW_DEFINE); ("as", KW_AS);
    ("int", KW_INT); ("float", KW_FLOAT);
    ("string", KW_STRING); ("bool", KW_BOOL); ("date", KW_DATE) ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize (src : string) : located array =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 and bol = ref 0 in
  let pos i = { Ast.line = !line; col = i - !bol + 1 } in
  let emit tok p = tokens := { tok; pos = p } :: !tokens in
  let rec go i =
    if i >= n then emit EOF (pos i)
    else
      let c = src.[i] in
      match c with
      | ' ' | '\t' | '\r' -> go (i + 1)
      | '\n' ->
        incr line;
        bol := i + 1;
        go (i + 1)
      | '-' when i + 1 < n && src.[i + 1] = '-' ->
        (* line comment *)
        let rec skip j = if j < n && src.[j] <> '\n' then skip (j + 1) else j in
        go (skip (i + 2))
      | '(' -> emit LPAREN (pos i); go (i + 1)
      | ')' -> emit RPAREN (pos i); go (i + 1)
      | '{' -> emit LBRACE (pos i); go (i + 1)
      | '}' -> emit RBRACE (pos i); go (i + 1)
      | ',' -> emit COMMA (pos i); go (i + 1)
      | ':' -> emit COLON (pos i); go (i + 1)
      | ';' -> emit SEMI (pos i); go (i + 1)
      | '.' -> emit DOT (pos i); go (i + 1)
      | '+' -> emit PLUS (pos i); go (i + 1)
      | '*' -> emit STAR (pos i); go (i + 1)
      | '/' -> emit SLASH (pos i); go (i + 1)
      | '%' -> emit PERCENT (pos i); go (i + 1)
      | '-' -> emit MINUS (pos i); go (i + 1)
      | '=' -> emit EQ (pos i); go (i + 1)
      | '<' ->
        if i + 1 < n && src.[i + 1] = '=' then (emit LE (pos i); go (i + 2))
        else if i + 1 < n && src.[i + 1] = '>' then (emit NEQ (pos i); go (i + 2))
        else (emit LT (pos i); go (i + 1))
      | '>' ->
        if i + 1 < n && src.[i + 1] = '=' then (emit GE (pos i); go (i + 2))
        else (emit GT (pos i); go (i + 1))
      | '!' when i + 1 < n && src.[i + 1] = '=' -> emit NEQ (pos i); go (i + 2)
      | '?' ->
        let rec num j = if j < n && is_digit src.[j] then num (j + 1) else j in
        let j = num (i + 1) in
        if j = i + 1 then
          raise (Lex_error ("expected a parameter index after '?'", pos i));
        emit (PARAM (int_of_string (String.sub src (i + 1) (j - i - 1)))) (pos i);
        go j
      | '"' ->
        let buf = Buffer.create 16 in
        let rec str j =
          if j >= n then raise (Lex_error ("unterminated string", pos i))
          else
            match src.[j] with
            | '"' -> j + 1
            | '\\' when j + 1 < n ->
              let e =
                match src.[j + 1] with
                | 'n' -> '\n'
                | 't' -> '\t'
                | c -> c
              in
              Buffer.add_char buf e;
              str (j + 2)
            | c ->
              Buffer.add_char buf c;
              str (j + 1)
        in
        let j = str (i + 1) in
        emit (STRING (Buffer.contents buf)) (pos i);
        go j
      | c when is_digit c ->
        let rec num j = if j < n && is_digit src.[j] then num (j + 1) else j in
        let j = num i in
        if j < n && src.[j] = '.' && j + 1 < n && is_digit src.[j + 1] then begin
          let k = num (j + 1) in
          emit (FLOAT (float_of_string (String.sub src i (k - i)))) (pos i);
          go k
        end
        else begin
          emit (INT (int_of_string (String.sub src i (j - i)))) (pos i);
          go j
        end
      | c when is_ident_start c ->
        let rec ident j = if j < n && is_ident_char src.[j] then ident (j + 1) else j in
        let j = ident i in
        let word = String.sub src i (j - i) in
        let tok =
          match List.assoc_opt (String.lowercase_ascii word) keyword_table with
          | Some kw -> kw
          | None -> IDENT word
        in
        emit tok (pos i);
        go j
      | c -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, pos i))
  in
  go 0;
  Array.of_list (List.rev !tokens)

let token_name = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT n -> Printf.sprintf "integer %d" n
  | FLOAT f -> Printf.sprintf "float %g" f
  | STRING s -> Printf.sprintf "string %S" s
  | PARAM i -> Printf.sprintf "parameter ?%d" i
  | LPAREN -> "'('" | RPAREN -> "')'"
  | LBRACE -> "'{'" | RBRACE -> "'}'"
  | COMMA -> "','" | COLON -> "':'" | SEMI -> "';'" | DOT -> "'.'"
  | EQ -> "'='" | NEQ -> "'<>'" | LT -> "'<'" | LE -> "'<='"
  | GT -> "'>'" | GE -> "'>='"
  | PLUS -> "'+'" | MINUS -> "'-'" | STAR -> "'*'" | SLASH -> "'/'"
  | PERCENT -> "'%'"
  | KW_SELECT -> "'select'" | KW_FROM -> "'from'" | KW_WHERE -> "'where'"
  | KW_IN -> "'in'" | KW_NOT -> "'not'" | KW_AND -> "'and'" | KW_OR -> "'or'"
  | KW_EXISTS -> "'exists'" | KW_FORALL -> "'forall'"
  | KW_UNION -> "'union'" | KW_INTERSECT -> "'intersect'"
  | KW_EXCEPT -> "'except'"
  | KW_SUBSET -> "'subset'" | KW_SUBSETEQ -> "'subseteq'"
  | KW_SUPSET -> "'supset'" | KW_SUPSETEQ -> "'supseteq'"
  | KW_CONTAINS -> "'contains'"
  | KW_COUNT -> "'count'" | KW_SUM -> "'sum'" | KW_MIN -> "'min'"
  | KW_MAX -> "'max'" | KW_AVG -> "'avg'"
  | KW_TRUE -> "'true'" | KW_FALSE -> "'false'"
  | KW_CLASS -> "'class'" | KW_WITH -> "'with'"
  | KW_EXTENSION -> "'extension'" | KW_ATTRIBUTES -> "'attributes'"
  | KW_END -> "'end'"
  | KW_DEFINE -> "'define'" | KW_AS -> "'as'"
  | KW_INT -> "'int'" | KW_FLOAT -> "'float'" | KW_STRING -> "'string'"
  | KW_BOOL -> "'bool'" | KW_DATE -> "'date'"
  | EOF -> "end of input"
