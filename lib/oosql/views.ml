(* Expansion of named view definitions ("named intermediate tables",
   Section 2: nesting in the from-clause "may occur as the result of
   expanding views or named intermediate tables").

   Views are closed OOSQL expressions; expansion splices the definition at
   every use of the view's name that is not shadowed by a from-binding or
   quantifier variable.  Views may reference previously defined views. *)

exception View_error of string * Ast.pos

(* Replace free occurrences of [name] by [body], respecting binders. *)
let rec splice name body (e : Ast.expr) : Ast.expr =
  let go = splice name body in
  match e with
  | Ast.EVar (x, _) when String.equal x name -> body
  | Ast.ELit _ | Ast.EParam _ | Ast.EVar _ -> e
  | Ast.EPath (b, a, p) -> Ast.EPath (go b, a, p)
  | Ast.ETuple (fields, p) ->
    Ast.ETuple (List.map (fun (n, fe) -> (n, go fe)) fields, p)
  | Ast.ESet (elems, p) -> Ast.ESet (List.map go elems, p)
  | Ast.EBin (op, a, b, p) -> Ast.EBin (op, go a, go b, p)
  | Ast.ENot (a, p) -> Ast.ENot (go a, p)
  | Ast.EQuant (q, x, range, pred, p) ->
    let pred' =
      if String.equal x name then pred else Option.map go pred
    in
    Ast.EQuant (q, x, go range, pred', p)
  | Ast.EAgg (agg, src, p) -> Ast.EAgg (agg, go src, p)
  | Ast.ESfw ({ proj; froms; where }, p) ->
    (* from-bindings scope over the select- and where-clauses and over
       later from-bindings; ranges are expanded until the name is bound. *)
    let rec expand_froms bound acc = function
      | [] -> (List.rev acc, bound)
      | (x, src) :: rest ->
        let src' = if bound then src else go src in
        expand_froms (bound || String.equal x name) ((x, src') :: acc) rest
    in
    let froms', bound = expand_froms false [] froms in
    if bound then Ast.ESfw ({ proj; froms = froms'; where }, p)
    else Ast.ESfw ({ proj = go proj; froms = froms'; where = Option.map go where }, p)

(* Expand all definitions (in order) inside an expression. *)
let expand (defines : (string * Ast.expr) list) (e : Ast.expr) : Ast.expr =
  (* Later definitions may use earlier ones: resolve each body first. *)
  let resolved =
    List.fold_left
      (fun acc (name, body) ->
        let body' =
          List.fold_left (fun b (n, def) -> splice n def b) body acc
        in
        (name, body') :: acc)
      [] defines
  in
  List.fold_left (fun q (name, body) -> splice name body q) e (List.rev resolved)

(* Expand a program's query against its view definitions. *)
let expand_program (p : Ast.program) : Ast.expr option =
  Option.map (expand p.defines) p.query
