(* Recursive-descent parser for OOSQL (schema definitions and queries).

   Operator precedence, loosest first:
     or < and < not < comparison/set-comparison < union/except < intersect
        < additive < multiplicative < unary minus < path < primary

   A select-from-where block is a primary expression and extends as far
   right as possible (parenthesize to delimit).  Tuple constructors are
   written (a = e, b = e, ...) and disambiguated from grouping parentheses
   by one extra token of lookahead. *)

open Lexer

exception Parse_error of string * Ast.pos

type state = { toks : located array; mutable i : int }

let peek st = st.toks.(st.i).tok
let peek2 st = if st.i + 1 < Array.length st.toks then st.toks.(st.i + 1).tok else EOF
let pos st = st.toks.(st.i).pos

let advance st = st.i <- st.i + 1

let error st msg =
  raise (Parse_error (Printf.sprintf "%s (found %s)" msg (token_name (peek st)), pos st))

let expect st tok msg =
  if peek st = tok then advance st else error st msg

let ident st =
  match peek st with
  | IDENT s ->
    advance st;
    s
  (* Type keywords double as ordinary attribute names (e.g. the paper's
     Delivery.date); they are only special in type position. *)
  | KW_INT -> advance st; "int"
  | KW_FLOAT -> advance st; "float"
  | KW_STRING -> advance st; "string"
  | KW_BOOL -> advance st; "bool"
  | KW_DATE -> advance st; "date"
  | _ -> error st "expected an identifier"

(* ------------------------------------------------------------------ *)
(* Types (schema declarations)                                         *)
(* ------------------------------------------------------------------ *)

let rec parse_type st : Ast.sqltype =
  match peek st with
  | KW_INT -> advance st; Ast.SInt
  | KW_FLOAT -> advance st; Ast.SFloat
  | KW_STRING -> advance st; Ast.SString
  | KW_BOOL -> advance st; Ast.SBool
  | KW_DATE -> advance st; Ast.SDate
  | IDENT c -> advance st; Ast.SClass c
  | LBRACE ->
    advance st;
    let t = parse_type st in
    expect st RBRACE "expected '}' closing set type";
    Ast.SSet t
  | LPAREN ->
    advance st;
    let rec fields acc =
      let name = ident st in
      expect st COLON "expected ':' in tuple type field";
      let t = parse_type st in
      let acc = (name, t) :: acc in
      if peek st = COMMA then (advance st; fields acc) else List.rev acc
    in
    let fs = fields [] in
    expect st RPAREN "expected ')' closing tuple type";
    Ast.STuple fs
  | _ -> error st "expected a type"

let parse_class st : Ast.class_def =
  expect st KW_CLASS "expected 'class'";
  let class_name = ident st in
  expect st KW_WITH "expected 'with'";
  expect st KW_EXTENSION "expected 'extension'";
  let extent = ident st in
  expect st KW_ATTRIBUTES "expected 'attributes'";
  let rec attrs acc =
    let name = ident st in
    expect st COLON "expected ':' after attribute name";
    let t = parse_type st in
    let acc = (name, t) :: acc in
    if peek st = COMMA then (advance st; attrs acc) else List.rev acc
  in
  let attributes = attrs [] in
  expect st KW_END "expected 'end' closing class definition";
  { Ast.class_name; extent; attributes }

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec parse_expr st : Ast.expr = parse_or st

and parse_or st =
  let p = pos st in
  let rec loop lhs =
    if peek st = KW_OR then begin
      advance st;
      loop (Ast.EBin (Ast.Or, lhs, parse_and st, p))
    end
    else lhs
  in
  loop (parse_and st)

and parse_and st =
  let p = pos st in
  let rec loop lhs =
    if peek st = KW_AND then begin
      advance st;
      loop (Ast.EBin (Ast.And, lhs, parse_not st, p))
    end
    else lhs
  in
  loop (parse_not st)

and parse_not st =
  let p = pos st in
  if peek st = KW_NOT && peek2 st <> KW_IN then begin
    advance st;
    Ast.ENot (parse_not st, p)
  end
  else parse_cmp st

and parse_cmp st =
  let p = pos st in
  let lhs = parse_set st in
  let bin op =
    advance st;
    let rhs = parse_set st in
    Ast.EBin (op, lhs, rhs, p)
  in
  match peek st with
  | EQ -> bin Ast.Eq
  | NEQ -> bin Ast.Neq
  | LT -> bin Ast.Lt
  | LE -> bin Ast.Le
  | GT -> bin Ast.Gt
  | GE -> bin Ast.Ge
  | KW_IN -> bin Ast.In
  | KW_NOT when peek2 st = KW_IN ->
    advance st;
    advance st;
    let rhs = parse_set st in
    Ast.EBin (Ast.NotIn, lhs, rhs, p)
  | KW_SUBSETEQ -> bin Ast.SubsetEq
  | KW_SUBSET -> bin Ast.SubsetOp
  | KW_SUPSETEQ -> bin Ast.SupsetEq
  | KW_SUPSET -> bin Ast.SupsetOp
  | KW_CONTAINS -> bin Ast.Contains
  | _ -> lhs

and parse_set st =
  let rec loop lhs =
    let p = pos st in
    match peek st with
    | KW_UNION ->
      advance st;
      loop (Ast.EBin (Ast.Union, lhs, parse_intersect st, p))
    | KW_EXCEPT ->
      advance st;
      loop (Ast.EBin (Ast.Except, lhs, parse_intersect st, p))
    | _ -> lhs
  in
  loop (parse_intersect st)

and parse_intersect st =
  let rec loop lhs =
    let p = pos st in
    if peek st = KW_INTERSECT then begin
      advance st;
      loop (Ast.EBin (Ast.Intersect, lhs, parse_add st, p))
    end
    else lhs
  in
  loop (parse_add st)

and parse_add st =
  let rec loop lhs =
    let p = pos st in
    match peek st with
    | PLUS ->
      advance st;
      loop (Ast.EBin (Ast.Add, lhs, parse_mul st, p))
    | MINUS ->
      advance st;
      loop (Ast.EBin (Ast.Sub, lhs, parse_mul st, p))
    | _ -> lhs
  in
  loop (parse_mul st)

and parse_mul st =
  let rec loop lhs =
    let p = pos st in
    match peek st with
    | STAR ->
      advance st;
      loop (Ast.EBin (Ast.Mul, lhs, parse_unary st, p))
    | SLASH ->
      advance st;
      loop (Ast.EBin (Ast.Div, lhs, parse_unary st, p))
    | PERCENT ->
      advance st;
      loop (Ast.EBin (Ast.Mod, lhs, parse_unary st, p))
    | _ -> lhs
  in
  loop (parse_unary st)

and parse_unary st =
  let p = pos st in
  if peek st = MINUS then begin
    advance st;
    Ast.EBin (Ast.Sub, Ast.ELit (Ast.LInt 0, p), parse_unary st, p)
  end
  else parse_postfix st

and parse_postfix st =
  let e = parse_primary st in
  let rec paths e =
    if peek st = DOT then begin
      let p = pos st in
      advance st;
      let a = ident st in
      paths (Ast.EPath (e, a, p))
    end
    else e
  in
  paths e

and parse_primary st =
  let p = pos st in
  match peek st with
  | INT n -> advance st; Ast.ELit (Ast.LInt n, p)
  | FLOAT f -> advance st; Ast.ELit (Ast.LFloat f, p)
  | PARAM i -> advance st; Ast.EParam (i, p)
  | STRING s -> advance st; Ast.ELit (Ast.LString s, p)
  | KW_TRUE -> advance st; Ast.ELit (Ast.LBool true, p)
  | KW_FALSE -> advance st; Ast.ELit (Ast.LBool false, p)
  | IDENT x -> advance st; Ast.EVar (x, p)
  | KW_SELECT -> parse_sfw st
  | KW_EXISTS | KW_FORALL ->
    let q = if peek st = KW_EXISTS then Ast.QExists else Ast.QForall in
    advance st;
    let x = ident st in
    expect st KW_IN "expected 'in' after quantifier variable";
    let range = parse_set st in
    let pred =
      if peek st = COLON then begin
        advance st;
        Some (parse_expr st)
      end
      else None
    in
    Ast.EQuant (q, x, range, pred, p)
  | KW_COUNT | KW_SUM | KW_MIN | KW_MAX | KW_AVG ->
    let agg =
      match peek st with
      | KW_COUNT -> Ast.ACount
      | KW_SUM -> Ast.ASum
      | KW_MIN -> Ast.AMin
      | KW_MAX -> Ast.AMax
      | _ -> Ast.AAvg
    in
    advance st;
    expect st LPAREN "expected '(' after aggregate";
    let e = parse_expr st in
    expect st RPAREN "expected ')' closing aggregate";
    Ast.EAgg (agg, e, p)
  | LBRACE ->
    advance st;
    if peek st = RBRACE then begin
      advance st;
      Ast.ESet ([], p)
    end
    else begin
      let rec elems acc =
        let e = parse_expr st in
        let acc = e :: acc in
        if peek st = COMMA then (advance st; elems acc) else List.rev acc
      in
      let es = elems [] in
      expect st RBRACE "expected '}' closing set literal";
      Ast.ESet (es, p)
    end
  | LPAREN ->
    advance st;
    (* Tuple constructor (a = e, ...) vs grouping (e). *)
    (match peek st, peek2 st with
     | IDENT _, EQ ->
       let rec fields acc =
         let name = ident st in
         expect st EQ "expected '=' in tuple field";
         let e = parse_expr st in
         let acc = (name, e) :: acc in
         if peek st = COMMA then (advance st; fields acc) else List.rev acc
       in
       let fs = fields [] in
       expect st RPAREN "expected ')' closing tuple constructor";
       Ast.ETuple (fs, p)
     | _ ->
       let e = parse_expr st in
       expect st RPAREN "expected ')'";
       e)
  | _ -> error st "expected an expression"

and parse_sfw st =
  let p = pos st in
  expect st KW_SELECT "expected 'select'";
  let proj = parse_expr st in
  expect st KW_FROM "expected 'from'";
  let rec froms acc =
    let x = ident st in
    expect st KW_IN "expected 'in' in from-clause";
    let src = parse_set st in
    let acc = (x, src) :: acc in
    if peek st = COMMA then (advance st; froms acc) else List.rev acc
  in
  let fs = froms [] in
  let where =
    if peek st = KW_WHERE then begin
      advance st;
      Some (parse_expr st)
    end
    else None
  in
  Ast.ESfw ({ proj; froms = fs; where }, p)

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let parse_define st =
  expect st KW_DEFINE "expected 'define'";
  let name = ident st in
  expect st KW_AS "expected 'as' after view name";
  let body = parse_expr st in
  expect st SEMI "expected ';' terminating the view definition";
  (name, body)

let parse_program (src : string) : Ast.program =
  let st = { toks = Lexer.tokenize src; i = 0 } in
  let rec classes acc =
    if peek st = KW_CLASS then classes (parse_class st :: acc) else List.rev acc
  in
  let cs = classes [] in
  let rec defines acc =
    if peek st = KW_DEFINE then defines (parse_define st :: acc) else List.rev acc
  in
  let ds = defines [] in
  let query =
    if peek st = EOF then None
    else begin
      let q = parse_expr st in
      if peek st = SEMI then advance st;
      Some q
    end
  in
  expect st EOF "expected end of input";
  { Ast.classes = cs; defines = ds; query }

let parse_query (src : string) : Ast.expr =
  match parse_program src with
  | { query = Some q; classes = []; defines = [] } -> q
  | { query = None; _ } -> raise (Parse_error ("no query in input", Ast.dummy_pos))
  | _ ->
    raise (Parse_error ("unexpected class or view definitions", Ast.dummy_pos))

let parse_schema (src : string) : Ast.schema =
  match parse_program src with
  | { classes; query = None; defines = [] } -> classes
  | _ -> raise (Parse_error ("expected only class definitions", Ast.dummy_pos))
