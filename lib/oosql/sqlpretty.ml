(* Pretty-printer for OOSQL abstract syntax.  Output re-parses to the same
   AST (modulo positions); the round-trip is property-tested. *)

let binop_str = function
  | Ast.Add -> "+" | Ast.Sub -> "-" | Ast.Mul -> "*" | Ast.Div -> "/"
  | Ast.Mod -> "%"
  | Ast.Eq -> "=" | Ast.Neq -> "<>" | Ast.Lt -> "<" | Ast.Le -> "<="
  | Ast.Gt -> ">" | Ast.Ge -> ">="
  | Ast.And -> "and" | Ast.Or -> "or"
  | Ast.Union -> "union" | Ast.Intersect -> "intersect" | Ast.Except -> "except"
  | Ast.In -> "in" | Ast.NotIn -> "not in"
  | Ast.SubsetEq -> "subseteq" | Ast.SubsetOp -> "subset"
  | Ast.SupsetEq -> "supseteq" | Ast.SupsetOp -> "supset"
  | Ast.Contains -> "contains"

let agg_str = function
  | Ast.ACount -> "count" | Ast.ASum -> "sum" | Ast.AMin -> "min"
  | Ast.AMax -> "max" | Ast.AAvg -> "avg"

(* Binding strength mirroring the parser's precedence levels. *)
let prec_of_binop = function
  | Ast.Or -> 1
  | Ast.And -> 2
  | Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge
  | Ast.In | Ast.NotIn | Ast.SubsetEq | Ast.SubsetOp | Ast.SupsetEq
  | Ast.SupsetOp | Ast.Contains -> 4
  | Ast.Union | Ast.Except -> 5
  | Ast.Intersect -> 6
  | Ast.Add | Ast.Sub -> 7
  | Ast.Mul | Ast.Div | Ast.Mod -> 8

let rec pp ?(ctx = 0) ppf (e : Ast.expr) =
  let level =
    match e with
    | Ast.EBin (op, _, _, _) -> prec_of_binop op
    | Ast.ENot _ -> 3
    | Ast.EQuant _ -> 1
    | Ast.ESfw _ -> 1
    | _ -> 10
  in
  if level < ctx then Fmt.pf ppf "(%a)" (fun ppf -> node level ppf) e
  else node level ppf e

and node level ppf (e : Ast.expr) =
  match e with
  | Ast.ELit (Ast.LBool b, _) -> Fmt.bool ppf b
  | Ast.ELit (Ast.LInt n, _) -> Fmt.int ppf n
  | Ast.ELit (Ast.LFloat f, _) ->
    (* Keep a decimal point so the literal re-parses as a float. *)
    if Float.is_integer f then Fmt.pf ppf "%.1f" f else Fmt.pf ppf "%.12g" f
  | Ast.ELit (Ast.LString s, _) -> Fmt.pf ppf "%S" s
  | Ast.EParam (i, _) -> Fmt.pf ppf "?%d" i
  | Ast.EVar (x, _) -> Fmt.string ppf x
  | Ast.EPath (b, a, _) -> Fmt.pf ppf "%a.%s" (pp ~ctx:10) b a
  | Ast.ETuple (fields, _) ->
    Fmt.pf ppf "(@[%a@])"
      (Fmt.list ~sep:Fmt.comma (fun ppf (n, fe) -> Fmt.pf ppf "%s = %a" n (pp ~ctx:0) fe))
      fields
  | Ast.ESet (elems, _) ->
    Fmt.pf ppf "{@[%a@]}" (Fmt.list ~sep:Fmt.comma (pp ~ctx:0)) elems
  | Ast.EBin (op, a, b, _) ->
    Fmt.pf ppf "%a %s %a" (pp ~ctx:level) a (binop_str op) (pp ~ctx:(level + 1)) b
  | Ast.ENot (a, _) -> Fmt.pf ppf "not %a" (pp ~ctx:(level + 1)) a
  | Ast.EQuant (q, x, range, pred, _) ->
    let qs = match q with Ast.QExists -> "exists" | Ast.QForall -> "forall" in
    (match pred with
     | None -> Fmt.pf ppf "%s %s in %a" qs x (pp ~ctx:5) range
     | Some p -> Fmt.pf ppf "%s %s in %a : %a" qs x (pp ~ctx:5) range (pp ~ctx:1) p)
  | Ast.EAgg (agg, src, _) -> Fmt.pf ppf "%s(%a)" (agg_str agg) (pp ~ctx:0) src
  | Ast.ESfw ({ proj; froms; where }, _) ->
    Fmt.pf ppf "@[<v>select %a@ from %a" (pp ~ctx:2) proj
      (Fmt.list ~sep:Fmt.comma (fun ppf (x, src) -> Fmt.pf ppf "%s in %a" x (pp ~ctx:5) src))
      froms;
    (match where with
     | None -> ()
     | Some w -> Fmt.pf ppf "@ where %a" (pp ~ctx:1) w);
    Fmt.pf ppf "@]"

let to_string (e : Ast.expr) = Fmt.str "@[%a@]" (pp ~ctx:0) e

let pp_sqltype_rec =
  let rec go ppf = function
    | Ast.SBool -> Fmt.string ppf "bool"
    | Ast.SInt -> Fmt.string ppf "int"
    | Ast.SFloat -> Fmt.string ppf "float"
    | Ast.SString -> Fmt.string ppf "string"
    | Ast.SDate -> Fmt.string ppf "date"
    | Ast.SClass c -> Fmt.string ppf c
    | Ast.STuple fields ->
      Fmt.pf ppf "(@[%a@])"
        (Fmt.list ~sep:Fmt.comma (fun ppf (n, t) -> Fmt.pf ppf "%s : %a" n go t))
        fields
    | Ast.SSet t -> Fmt.pf ppf "{ %a }" go t
  in
  go

let pp_class ppf (c : Ast.class_def) =
  Fmt.pf ppf "@[<v>class %s with extension %s attributes@   @[<v>%a@]@ end@]"
    c.Ast.class_name c.Ast.extent
    (Fmt.list ~sep:Fmt.comma (fun ppf (n, t) -> Fmt.pf ppf "%s : %a" n pp_sqltype_rec t))
    c.Ast.attributes

let pp_schema ppf (s : Ast.schema) = Fmt.(list ~sep:(any "@.@.") pp_class) ppf s
