(** Abstract syntax of OOSQL (paper Section 2): an orthogonal SQL-like
    language with nesting allowed in the select-, from- and where-clauses,
    quantifiers, set comparison operators and set-valued attributes. *)

type pos = { line : int; col : int }

val dummy_pos : pos

(** {1 Schema definitions} *)

type sqltype =
  | SBool
  | SInt
  | SFloat
  | SString
  | SDate
  | SClass of string  (** reference to a class by class name *)
  | STuple of (string * sqltype) list
  | SSet of sqltype

type class_def = {
  class_name : string;
  extent : string;  (** name of the class extension (base table) *)
  attributes : (string * sqltype) list;
}

type schema = class_def list

(** {1 Query expressions} *)

type lit = LBool of bool | LInt of int | LFloat of float | LString of string

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Neq | Lt | Le | Gt | Ge
      (** [Eq]/[Neq] double as set equality, resolved by typing *)
  | And | Or
  | Union | Intersect | Except
  | In | NotIn | SubsetEq | SubsetOp | SupsetEq | SupsetOp | Contains

type quant = QExists | QForall
type agg = ACount | ASum | AMin | AMax | AAvg

type expr =
  | ELit of lit * pos
  | EParam of int * pos  (** [?i] prepared-query placeholder *)
  | EVar of string * pos  (** variable or class-extent name *)
  | EPath of expr * string * pos  (** [e.a], with implicit dereferencing *)
  | ETuple of (string * expr) list * pos
  | ESet of expr list * pos
  | EBin of binop * expr * expr * pos
  | ENot of expr * pos
  | EQuant of quant * string * expr * expr option * pos
      (** [exists/forall x in e \[: p\]]; a missing predicate is an
          emptiness test (Example Query 3.2) *)
  | EAgg of agg * expr * pos
  | ESfw of sfw * pos

and sfw = {
  proj : expr;
  froms : (string * expr) list;
  where : expr option;
}

val pos_of : expr -> pos

(** A parsed program: class declarations, named view definitions (the
    paper's "named intermediate tables"), then an optional query. *)
type program = {
  classes : schema;
  defines : (string * expr) list;
  query : expr option;
}
