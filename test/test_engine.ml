(* Tests for the physical engine: every algorithm must agree with the
   reference evaluator (differential testing on random tables), plus
   dedicated tests for the member join, PNHL and assembly operators. *)

open Njq_adl
open Dsl
module Plan = Njq_engine.Plan
module Exec = Njq_engine.Exec
module Planner = Njq_engine.Planner

let join_pred = eq (var "x" $. "a") (var "y" $. "d")

let join_expr kind =
  Expr.Join
    { kind; xvar = "x"; yvar = "y"; pred = join_pred; left = Expr.Table "X";
      right = Expr.Table "Y" }

let all_kinds =
  [ ("inner", Expr.Inner); ("semi", Expr.Semi); ("anti", Expr.Anti);
    ("outer", Expr.LeftOuter [ "d"; "e" ]) ]

(* Differential: hash and nested-loop joins equal the reference evaluator. *)
let prop_join_algos =
  Util.qcheck ~count:150 "join algorithms match reference" Util.arbitrary_xy
    (fun tables ->
      let cat = Util.xy_catalog tables in
      List.for_all
        (fun (_, kind) ->
          let e = join_expr kind in
          let expected = Eval.run cat e in
          let nl = Exec.run cat (Planner.plan ~algo:(Planner.Force Plan.Nested_loop) e) in
          let hash = Exec.run cat (Planner.plan ~algo:(Planner.Force Plan.Hash) e) in
          Value.equal expected nl && Value.equal expected hash)
        all_kinds)

let prop_sort_merge =
  Util.qcheck ~count:150 "sort-merge inner join matches reference" Util.arbitrary_xy
    (fun tables ->
      let cat = Util.xy_catalog tables in
      let e = join_expr Expr.Inner in
      let sm = Exec.run cat (Planner.plan ~algo:(Planner.Force Plan.Sort_merge) e) in
      Value.equal (Eval.run cat e) sm)

let prop_nestjoin_algos =
  Util.qcheck ~count:150 "nestjoin algorithms match reference" Util.arbitrary_xy
    (fun tables ->
      let cat = Util.xy_catalog tables in
      let e =
        nestjoin ~x:"x" ~y:"y" ~attr:"g" ~body:(var "y" $. "e") join_pred
          (table "X") (table "Y")
      in
      let expected = Eval.run cat e in
      let nl = Exec.run cat (Planner.plan ~algo:(Planner.Force Plan.Nested_loop) e) in
      let hash = Exec.run cat (Planner.plan ~algo:(Planner.Force Plan.Hash) e) in
      let sm = Exec.run cat (Planner.plan ~algo:(Planner.Force Plan.Sort_merge) e) in
      Value.equal expected nl && Value.equal expected hash
      && Value.equal expected sm)

let prop_member_join =
  Util.qcheck ~count:150 "member joins match reference" Util.arbitrary_xy
    (fun tables ->
      let cat = Util.xy_catalog tables in
      let shapes kind =
        [ (* quantifier form *)
          Expr.Join
            { kind; xvar = "x"; yvar = "y";
              pred = exists "z" (var "x" $. "c") (eq (var "z") (var "y" $. "e"));
              left = Expr.Table "X"; right = Expr.Table "Y" };
          (* membership form *)
          Expr.Join
            { kind; xvar = "x"; yvar = "y";
              pred = mem (var "y" $. "e") (var "x" $. "c");
              left = Expr.Table "X"; right = Expr.Table "Y" } ]
      in
      List.for_all
        (fun kind ->
          List.for_all
            (fun e ->
              let planned = Planner.plan e in
              (* the planner must pick the member join *)
              let is_member =
                match planned with Plan.MemberJoin _ -> true | _ -> false
              in
              is_member && Value.equal (Eval.run cat e) (Exec.run cat planned))
            (shapes kind))
        [ Expr.Semi; Expr.Anti ])

let prop_member_nestjoin =
  Util.qcheck ~count:150 "member nestjoin matches reference" Util.arbitrary_xy
    (fun tables ->
      let cat = Util.xy_catalog tables in
      let e =
        nestjoin ~x:"x" ~y:"y" ~attr:"g"
          (mem (var "y" $. "e") (var "x" $. "c"))
          (table "X") (table "Y")
      in
      let planned = Planner.plan e in
      (match planned with Plan.MemberJoin { kind = Plan.MNest _; _ } -> true | _ -> false)
      && Value.equal (Eval.run cat e) (Exec.run cat planned))

(* Other operators through the planner. *)
let prop_structural_ops =
  Util.qcheck ~count:150 "structural operators match reference" Util.arbitrary_xy
    (fun tables ->
      let cat = Util.xy_catalog tables in
      let exprs =
        [ project [ "a" ] (table "X");
          map_ "x" (table "X") (count (var "x" $. "c"));
          select "y" (table "Y") (gt (var "y" $. "e") (int 2));
          union (project [ "a" ] (table "X")) (project [ "a" ] (table "X"));
          inter (table "Y") (select "y" (table "Y") (gt (var "y" $. "d") (int 1)));
          diff (table "Y") (select "y" (table "Y") (gt (var "y" $. "d") (int 1)));
          flatten (map_ "x" (table "X") (var "x" $. "c"));
          nest ~attrs:[ "e" ] ~into:"es" (table "Y");
          unnest "c" (table "X") ]
      in
      List.for_all
        (fun e -> Value.equal (Eval.run cat e) (Exec.run cat (Planner.plan e)))
        exprs)

(* Key extraction *)
let test_key_extraction () =
  let pred =
    eq (var "x" $. "a") (var "y" $. "d")
    &&& gt (var "y" $. "e") (int 1)
    &&& eq (var "y" $. "e") (var "x" $. "a")
  in
  let keys, residual = Planner.extract_keys "x" "y" pred in
  Alcotest.(check int) "two keys" 2 (List.length keys);
  Alcotest.(check bool) "residual keeps the filter" true
    (match residual with Expr.Cmp (Expr.Gt, _, _) -> true | _ -> false);
  (* keys are oriented left-to-right *)
  List.iter
    (fun (kx, ky) ->
      Alcotest.(check bool) "kx over x" true
        (Analysis.S.subset (Analysis.free_vars kx) (Analysis.S.singleton "x"));
      Alcotest.(check bool) "ky over y" true
        (Analysis.S.subset (Analysis.free_vars ky) (Analysis.S.singleton "y")))
    keys

(* ---------------- PNHL ---------------- *)

(* Reference result for materializing each supplier's parts. *)
let pnhl_plan ~budget =
  Plan.Pnhl
    { attr = "parts_supplied";
      elem_key = var "elem";
      row_key = var "row" $. "oid";
      into = "parts_supplied";
      mem_budget = budget;
      left = Plan.Scan "SUPPLIER";
      right = Plan.Scan "PART" }

let unnest_join_nest_plan () =
  (* The pipeline PNHL is compared against: unnest the attribute, hash-join
     with PART, re-nest.  Loses suppliers with an empty attribute. *)
  Planner.plan
    (nest
       ~attrs:[ "parts_supplied"; "oid_p"; "pname"; "price"; "color" ]
       ~into:"parts"
       (join ~x:"u" ~y:"p"
          (eq (var "u" $. "parts_supplied") (var "p" $. "oid_p"))
          (unnest "parts_supplied" (table "SUPPLIER"))
          (map_ "p" (table "PART")
             (tuple
                [ ("oid_p", var "p" $. "oid"); ("pname", var "p" $. "pname");
                  ("price", var "p" $. "price"); ("color", var "p" $. "color") ]))))

let test_pnhl_correct () =
  let cfg = { Njq_workload.Generator.default_config with dangling_rate = 0.0 } in
  let cat = Njq_workload.Generator.catalog cfg in
  let expected = Eval.run cat Njq_workload.Queries.materialize_parts_query in
  let got = Exec.run cat (pnhl_plan ~budget:1000) in
  Alcotest.check Util.value "pnhl = reference materialization" expected got

let test_pnhl_partitioning_invariant () =
  let cfg = { Njq_workload.Generator.default_config with dangling_rate = 0.0 } in
  let cat = Njq_workload.Generator.catalog cfg in
  let full = Exec.run cat (pnhl_plan ~budget:100000) in
  List.iter
    (fun budget ->
      Counters.reset ();
      let partitioned = Exec.run cat (pnhl_plan ~budget) in
      Alcotest.check Util.value
        (Printf.sprintf "budget %d gives same result" budget)
        full partitioned;
      let parts = Counters.get "pnhl_partition" in
      let expected_parts =
        (Catalog.cardinality cat "PART" + budget - 1) / budget
      in
      Alcotest.(check int)
        (Printf.sprintf "partition count at budget %d" budget)
        expected_parts parts)
    [ 1; 7; 16; 64 ]

let test_pnhl_keeps_empty_sets () =
  (* PNHL preserves suppliers with empty parts_supplied; the
     unnest-join-nest pipeline loses them (the PNF caveat of Section 4). *)
  let cfg =
    { Njq_workload.Generator.default_config with
      dangling_rate = 0.0; empty_rate = 0.5 }
  in
  let cat = Njq_workload.Generator.catalog cfg in
  let suppliers = Catalog.cardinality cat "SUPPLIER" in
  let via_pnhl = Value.set_size (Exec.run cat (pnhl_plan ~budget:1000)) in
  let via_ujn = Value.set_size (Exec.run cat (unnest_join_nest_plan ())) in
  Alcotest.(check int) "pnhl keeps all suppliers" suppliers via_pnhl;
  Alcotest.(check bool) "unnest-join-nest drops empty ones" true (via_ujn < suppliers)

(* The planner recognizes the Section 6.2 materialization pattern and plans
   it as PNHL instead of per-tuple nested evaluation. *)
let test_pnhl_autoplan () =
  let cfg = { Njq_workload.Generator.default_config with dangling_rate = 0.0 } in
  let cat = Njq_workload.Generator.catalog cfg in
  let q = Njq_workload.Queries.materialize_parts_query in
  let plan = Planner.plan q in
  (match plan with
   | Plan.Pnhl { attr = "parts_supplied"; into = "parts_supplied";
                 right = Plan.Scan "PART"; _ } -> ()
   | p -> Alcotest.failf "expected a PNHL plan, got %a" Plan.pp p);
  Alcotest.check Util.value "pnhl plan result" (Eval.run cat q) (Exec.run cat plan);
  (* and it does far less parameter-evaluation work *)
  let work f =
    Counters.reset ();
    ignore (f ());
    List.fold_left (fun acc (_, v) -> acc + v) 0 (Counters.snapshot ())
  in
  let nested = work (fun () -> Eval.run cat q) in
  let pnhl = work (fun () -> Exec.run cat plan) in
  Alcotest.(check bool)
    (Printf.sprintf "pnhl %d << nested %d" pnhl nested)
    true (pnhl * 4 < nested)

(* ---------------- Assembly ---------------- *)

let test_assembly () =
  let cfg = { Njq_workload.Generator.default_config with dangling_rate = 0.0 } in
  let cat = Njq_workload.Generator.catalog cfg in
  let plan =
    Plan.Assembly
      { cls = "SUPPLIER"; ref_attr = "supplier"; into = "supplier_obj";
        input = Plan.Scan "DELIVERY" }
  in
  let expected =
    Eval.run cat
      (map_ "d" (table "DELIVERY")
         (except (var "d")
            [ ("supplier_obj", deref "SUPPLIER" (var "d" $. "supplier")) ]))
  in
  Alcotest.check Util.value "assembly materializes references" expected
    (Exec.run cat plan)

(* Error paths: assembly must fail loudly — in both execution modes — on
   dangling references and non-oid reference attributes, and [set_rows]
   must invalidate the lazy oid index so later derefs see the new extent. *)

let ref_row_type =
  Vtype.TTuple [ ("part", Vtype.TRef "PART"); ("tag", Vtype.TString) ]

let ref_catalog rows =
  let cat = Util.small_catalog () in
  Catalog.add_table cat ~name:"REF" ~row_type:ref_row_type rows;
  cat

let assemble_refs cat =
  Exec.run cat
    (Plan.Assembly
       { cls = "PART"; ref_attr = "part"; into = "part_obj";
         input = Plan.Scan "REF" })

let in_both_modes f =
  List.iter
    (fun mode ->
      let prev = !Exec.pipeline_exec in
      Exec.pipeline_exec := mode;
      Fun.protect ~finally:(fun () -> Exec.pipeline_exec := prev) (fun () ->
          f (if mode then "pipelined" else "materializing")))
    [ true; false ]

let check_type_error name f =
  match f () with
  | v -> Alcotest.failf "%s: expected Type_error, got %a" name Value.pp v
  | exception Value.Type_error _ -> ()

let test_assembly_dangling_oid () =
  let cat =
    ref_catalog
      [ Value.tuple [ ("part", Value.oid 1); ("tag", Value.string "ok") ];
        Value.tuple [ ("part", Value.oid 77); ("tag", Value.string "bad") ] ]
  in
  in_both_modes (fun mode ->
      check_type_error
        (mode ^ ": dangling reference #77")
        (fun () -> assemble_refs cat))

let test_assembly_non_oid_ref () =
  let cat =
    ref_catalog
      [ Value.tuple [ ("part", Value.int 1); ("tag", Value.string "notref") ] ]
  in
  in_both_modes (fun mode ->
      check_type_error
        (mode ^ ": non-oid reference attribute")
        (fun () -> assemble_refs cat))

let test_assembly_index_invalidation () =
  let cat =
    ref_catalog [ Value.tuple [ ("part", Value.oid 1); ("tag", Value.string "x") ] ]
  in
  (* First run resolves oid 1 and builds the lazy index as a side effect. *)
  ignore (assemble_refs cat);
  (* Rebinding PART without oid 1 must invalidate that index: the same
     plan now sees a dangling reference, not a stale hit. *)
  let keep =
    List.filter
      (fun row -> Value.as_oid (Value.field row "oid") <> 1)
      (Catalog.rows cat "PART")
  in
  Catalog.set_rows cat "PART" keep;
  in_both_modes (fun mode ->
      check_type_error
        (mode ^ ": deref after set_rows invalidation")
        (fun () -> assemble_refs cat));
  (* And restoring the row makes the deref succeed again. *)
  Catalog.set_rows cat "PART"
    (Util.part ~oid:1 ~pname:"bolt" ~price:10 ~color:"red" :: keep);
  Alcotest.(check int) "resolves again after restore" 1
    (List.length (Value.as_set (assemble_refs cat)))

(* Counters sanity: hash joins do fewer pair tests than nested loops. *)
let test_hash_beats_nl_on_counters () =
  let cat =
    Njq_workload.Generator.catalog (Njq_workload.Generator.scaled ~seed:3 128)
  in
  let e =
    semijoin ~x:"d" ~y:"s"
      (eq (var "d" $. "supplier") (var "s" $. "oid"))
      (table "DELIVERY") (table "SUPPLIER")
  in
  let count_for algo key =
    Counters.reset ();
    ignore (Exec.run cat (Planner.plan ~algo e));
    Counters.get key
  in
  let nl_pairs = count_for (Planner.Force Plan.Nested_loop) "nl_pair" in
  let probes = count_for (Planner.Force Plan.Hash) "hash_probe" in
  Alcotest.(check bool)
    (Printf.sprintf "probes (%d) < nl pairs (%d)" probes nl_pairs)
    true
    (probes < nl_pairs)

let () =
  Alcotest.run "engine"
    [ ( "differential",
        [ prop_join_algos; prop_sort_merge; prop_nestjoin_algos;
          prop_member_join; prop_member_nestjoin; prop_structural_ops ] );
      ( "planner",
        [ Alcotest.test_case "key extraction" `Quick test_key_extraction ] );
      ( "pnhl",
        [ Alcotest.test_case "correctness" `Quick test_pnhl_correct;
          Alcotest.test_case "partitioning invariant" `Quick test_pnhl_partitioning_invariant;
          Alcotest.test_case "keeps empty sets" `Quick test_pnhl_keeps_empty_sets;
          Alcotest.test_case "planner auto-PNHL" `Quick test_pnhl_autoplan ] );
      ( "assembly",
        [ Alcotest.test_case "pointer materialization" `Quick test_assembly;
          Alcotest.test_case "dangling oid raises" `Quick
            test_assembly_dangling_oid;
          Alcotest.test_case "non-oid ref_attr raises" `Quick
            test_assembly_non_oid_ref;
          Alcotest.test_case "set_rows invalidates oid index" `Quick
            test_assembly_index_invalidation ] );
      ( "counters",
        [ Alcotest.test_case "hash beats nested loop" `Quick test_hash_beats_nl_on_counters ] ) ]
