(* Tests for the cost-based join-order enumerator (Joinorder).

   The contract: reordering is invisible in results.  Every enumerated
   order of a join region — over generated 3-6 relation graphs with
   inner-join, semijoin, antijoin and nestjoin edges — produces results
   bit-identical to the rewriter-order plan, in all three executor modes
   (materializing, pipelined, batched) at 1/2/4 pool domains.  Distinct
   enumerated orders carry distinct plan fingerprints (the observability
   hook: a changed order choice shows up in qlog/njq top).  Enumerated
   plans flow through the plan cache under the normal key discipline.
   With a shared subplan fingerprint, selection placement hoists a
   selection above the sharing boundary instead of pushing it to the
   leaf. *)

open Njq_adl
open Dsl
module Plan = Njq_engine.Plan
module Planner = Njq_engine.Planner
module Joinorder = Njq_engine.Joinorder
module Exec = Njq_engine.Exec
module Pool = Njq_engine.Pool
module Plancache = Njq_engine.Plancache
module Stats = Njq_engine.Stats

let with_exec ~pipeline ~batch f =
  let prev_p = !Exec.pipeline_exec and prev_b = !Exec.batch_exec in
  Exec.pipeline_exec := pipeline;
  Exec.batch_exec := batch;
  Fun.protect
    ~finally:(fun () ->
      Exec.pipeline_exec := prev_p;
      Exec.batch_exec := prev_b)
    f

let with_domains k f =
  let prev = Pool.domains () in
  Pool.set_domains k;
  Fun.protect ~finally:(fun () -> Pool.set_domains prev) f

let with_reorder flag f =
  let prev = !Joinorder.use_joinorder in
  Joinorder.use_joinorder := flag;
  Fun.protect ~finally:(fun () -> Joinorder.use_joinorder := prev) f

let modes = [ (false, false); (true, false); (true, true) ]

(* ------------------------------------------------------------------ *)
(* Random 3-6 relation join graphs.  Relation [i] carries attributes
   a<i>/b<i> (globally distinct names, the rename discipline the
   enumerator requires); edges link a fresh relation to a random already
   visible one.  Inner edges make the new relation's attributes visible;
   semijoin/antijoin/nestjoin edges ride along as unary constraints. *)

type edge_kind = EJoin | ESemi | EAnti | ENest

let an i = Printf.sprintf "a%d" i
let bn i = Printf.sprintf "b%d" i
let tn i = Printf.sprintf "T%d" i

let row_type i =
  Vtype.TTuple [ (an i, Vtype.TInt); (bn i, Vtype.TInt) ]

let mk_catalog rows_per_table =
  let cat = Catalog.create () in
  List.iteri
    (fun i rows ->
      Catalog.add_table cat ~name:(tn i) ~row_type:(row_type i)
        (List.map
           (fun (a, b) -> Value.tuple [ (an i, Value.int a); (bn i, Value.int b) ])
           rows))
    rows_per_table;
  cat

(* One graph: per-table rows, per-edge (kind, anchor choice, extra
   residual?, pre-filter?), and a bool for a filter on the accumulated
   result after the last join. *)
let gen_graph =
  QCheck.Gen.(
    let gen_rows = list_size (int_range 0 6) (pair (int_range 0 4) (int_range 0 4)) in
    int_range 3 6 >>= fun k ->
    list_repeat k gen_rows >>= fun tables ->
    list_repeat (k - 1)
      (quad (int_range 0 3) (int_range 0 1000) bool bool)
    >>= fun edges ->
    bool >>= fun final_filter -> return (tables, edges, final_filter))

let edge_kind = function
  | 0 -> ESemi
  | 1 -> EAnti
  | 2 -> ENest
  | _ -> EJoin

(* Build the left-deep as-written query.  [visible] tracks relations whose
   attributes survive in the accumulated rows. *)
let build_query (tables, edges, final_filter) =
  let k = List.length tables in
  let acc = ref (table (tn 0)) in
  let visible = ref [ 0 ] in
  let produced = ref [] in
  List.iteri
    (fun idx (kindn, anchorn, extra, prefilter) ->
      let i = idx + 1 in
      let kind = edge_kind kindn in
      (* more inner joins than constraint edges, so regions grow *)
      let kind = if kindn = 3 || i = 1 then EJoin else kind in
      let anchor = List.nth !visible (anchorn mod List.length !visible) in
      let x = "x" and y = "y" in
      let key = eq (var x $. an anchor) (var y $. an i) in
      let pred =
        if extra then key &&& le (var x $. bn anchor) (var y $. bn i) else key
      in
      let right =
        if prefilter then select "s" (table (tn i)) (le (var "s" $. bn i) (int 2))
        else table (tn i)
      in
      (match kind with
      | EJoin ->
        acc := join ~x ~y pred !acc right;
        visible := !visible @ [ i ]
      | ESemi -> acc := semijoin ~x ~y pred !acc right
      | EAnti -> acc := antijoin ~x ~y pred !acc right
      | ENest ->
        let attr = Printf.sprintf "g%d" i in
        acc := nestjoin ~x ~y ~body:(var y $. bn i) ~attr pred !acc right;
        produced := attr :: !produced);
      ignore k)
    edges;
  let q =
    if final_filter then
      let anchor = List.nth !visible (List.length !visible - 1) in
      select "f" !acc (le (var "f" $. bn anchor) (int 3))
    else !acc
  in
  q

(* ------------------------------------------------------------------ *)

let check_value = Util.check_value

(* Differential: rewriter order vs enumerated order vs every enumerated
   order, all modes, 1/2/4 domains. *)
let diff_prop g =
  let tables, _, _ = g in
  let cat = mk_catalog tables in
  let q = build_query g in
  let reference =
    with_domains 1 (fun () ->
        with_exec ~pipeline:false ~batch:false (fun () ->
            with_reorder false (fun () -> Exec.run cat (Planner.plan ~cat q))))
  in
  let all_orders =
    with_domains 1 (fun () ->
        with_reorder false (fun () ->
            Joinorder.orders ~limit:8 ~stats:(Stats.cached cat) cat
              (Planner.plan ~cat q)))
  in
  List.iter
    (fun d ->
      with_domains d (fun () ->
          let p_rw = with_reorder false (fun () -> Planner.plan ~cat q) in
          let p_en = with_reorder true (fun () -> Planner.plan ~cat q) in
          List.iter
            (fun (pipeline, batch) ->
              with_exec ~pipeline ~batch (fun () ->
                  check_value "rewriter order" reference (Exec.run cat p_rw);
                  check_value "enumerated order" reference (Exec.run cat p_en);
                  List.iteri
                    (fun i o ->
                      check_value
                        (Printf.sprintf "order %d (d=%d p=%b b=%b)" i d
                           pipeline batch)
                        reference (Exec.run cat o))
                    all_orders))
            modes))
    [ 1; 2; 4 ];
  true

(* ------------------------------------------------------------------ *)
(* Deterministic fixtures. *)

(* Chain T0 - T1 - T2 with skewed sizes and a selective filter on the
   last relation: reordering must win on estimated cost, and distinct
   orders must have distinct fingerprints. *)
let chain_fixture () =
  let rows n = List.init n (fun i -> (i, i)) in
  let cat = mk_catalog [ rows 32; rows 32; rows 32 ] in
  let q =
    select "f"
      (join ~x:"x" ~y:"y"
         (eq (var "x" $. an 1) (var "y" $. an 2))
         (join ~x:"x" ~y:"y"
            (eq (var "x" $. an 0) (var "y" $. an 1))
            (table (tn 0)) (table (tn 1)))
         (table (tn 2)))
      (lt (var "f" $. bn 2) (int 4))
  in
  (cat, q)

let test_fingerprints_distinct () =
  let cat, q = chain_fixture () in
  let p = with_reorder false (fun () -> Planner.plan ~cat q) in
  let orders = Joinorder.orders ~stats:(Stats.cached cat) cat p in
  Alcotest.(check bool) "several orders" true (List.length orders >= 3);
  (* pairwise structurally distinct, and fingerprints separate them *)
  let rec pairs = function
    | [] -> ()
    | o :: rest ->
      List.iter
        (fun o' ->
          Alcotest.(check bool) "orders differ" false (Plan.equal o o'))
        rest;
      pairs rest
  in
  pairs orders;
  let fps = List.map Plan.fingerprint orders in
  Alcotest.(check int) "fingerprints distinct"
    (List.length orders)
    (List.length (List.sort_uniq String.compare fps))

let test_reorder_wins () =
  let cat, q = chain_fixture () in
  let p_en = with_reorder true (fun () -> Planner.plan ~cat q) in
  let report = !Joinorder.last_report in
  Alcotest.(check bool) "one region" true (List.length report = 1);
  let r = List.hd report in
  Alcotest.(check bool) "considered some plans" true (r.Joinorder.considered > 0);
  Alcotest.(check bool) "pruned some plans" true (r.Joinorder.pruned > 0);
  Alcotest.(check bool) "chosen no costlier than rewriter" true
    (r.Joinorder.chosen_cost <= r.Joinorder.rewriter_cost);
  Alcotest.(check bool) "reordered" true r.Joinorder.reordered;
  Alcotest.(check string) "fingerprint surfaced" (Plan.fingerprint p_en)
    r.Joinorder.chosen_fingerprint;
  (* and the reorder is results-invisible *)
  let p_rw = with_reorder false (fun () -> Planner.plan ~cat q) in
  Alcotest.(check bool) "fingerprints differ" false
    (String.equal (Plan.fingerprint p_rw) (Plan.fingerprint p_en));
  check_value "same result" (Exec.run cat p_rw) (Exec.run cat p_en)

let test_plancache_discipline () =
  let cat, q = chain_fixture () in
  Plancache.clear ();
  let derive _ = with_reorder true (fun () -> Planner.plan ~cat q) in
  let p1, hit1 = Plancache.find_or_derive_report cat "joinorder-q" ~derive in
  let p2, hit2 = Plancache.find_or_derive_report cat "joinorder-q" ~derive in
  Alcotest.(check bool) "first is a miss" false hit1;
  Alcotest.(check bool) "second is a hit" true hit2;
  Alcotest.(check bool) "cache returns the enumerated plan" true
    (Plan.equal p1 p2);
  Alcotest.(check string) "enumerated fingerprint cached"
    (Plan.fingerprint (derive ""))
    (Plan.fingerprint p2)

(* Selection placement: with the unfiltered join subtree marked shared, a
   leaf-pushed selection hoists above the sharing boundary. *)
let test_selection_hoist () =
  let rows n = List.init n (fun i -> (i, i)) in
  let cat = mk_catalog [ rows 40; rows 40 ] in
  let stats = Stats.cached cat in
  (* deliberately bad hand-written plan: filter unpushed, nested loops *)
  let raw =
    Plan.Filter
      {
        var = "f";
        pred = lt (var "f" $. bn 0) (int 2);
        input =
          Plan.JoinOp
            {
              algo = Plan.Nested_loop;
              kind = Expr.Inner;
              xvar = "x";
              yvar = "y";
              keys = [ (var "x" $. an 0, var "y" $. an 1) ];
              residual = Expr.true_;
              left = Plan.Scan (tn 0);
              right = Plan.Scan (tn 1);
            };
      }
  in
  let find_join p =
    let found = ref None in
    Plan.iter_nodes
      (fun n ->
        match n with
        | Plan.JoinOp { kind = Expr.Inner; _ } when !found = None ->
          found := Some n
        | _ -> ())
      p;
    Option.get !found
  in
  (* pass 1, no sharing: the filter lands on the T0 leaf (either side) *)
  let p1 = Joinorder.optimize ~stats cat raw in
  let j1 = find_join p1 in
  let leaf_filtered = function
    | Plan.Filter { input = Plan.Scan t; _ } -> String.equal t (tn 0)
    | _ -> false
  in
  let pushed =
    match j1 with
    | Plan.JoinOp { left; right; _ } ->
      leaf_filtered left || leaf_filtered right
    | _ -> false
  in
  Alcotest.(check bool) "no sharing: selection pushed to the leaf" true pushed;
  (* pass 2: mark the unfiltered join shared; the selection must hoist *)
  let j_unfiltered =
    match j1 with
    | Plan.JoinOp ({ left = Plan.Filter { input; _ }; _ } as j)
      when leaf_filtered j.left ->
      Plan.JoinOp { j with left = input }
    | Plan.JoinOp ({ right = Plan.Filter { input; _ }; _ } as j)
      when leaf_filtered j.right ->
      Plan.JoinOp { j with right = input }
    | _ -> Alcotest.fail "expected filtered leaf under the join"
  in
  let prev = !Joinorder.shared in
  Joinorder.shared := [ Plan.fingerprint j_unfiltered ];
  Fun.protect
    ~finally:(fun () -> Joinorder.shared := prev)
    (fun () ->
      let p2 = Joinorder.optimize ~stats cat raw in
      let contains_shared = ref false in
      Plan.iter_nodes
        (fun n -> if Plan.equal n j_unfiltered then contains_shared := true)
        p2;
      Alcotest.(check bool) "sharing: selection hoisted above the join" true
        !contains_shared;
      let r = List.hd !Joinorder.last_report in
      Alcotest.(check bool) "hoist counted" true (r.Joinorder.hoisted >= 1);
      check_value "hoisted plan result unchanged" (Exec.run cat raw)
        (Exec.run cat p2))

let () =
  Alcotest.run "joinorder"
    [
      ( "differential",
        [
          Util.qcheck ~count:25 "every enumerated order bit-identical (modes x domains)"
            (QCheck.make ~print:(fun g -> Pretty.to_string (build_query g)) gen_graph)
            diff_prop;
        ] );
      ( "enumeration",
        [
          Alcotest.test_case "distinct orders have distinct fingerprints" `Quick
            test_fingerprints_distinct;
          Alcotest.test_case "chain reorder wins and is surfaced" `Quick
            test_reorder_wins;
          Alcotest.test_case "plan cache serves enumerated plans" `Quick
            test_plancache_discipline;
        ] );
      ( "placement",
        [
          Alcotest.test_case "shared subplan hoists selection" `Quick
            test_selection_hoist;
        ] );
    ]
