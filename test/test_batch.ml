(* Tests for the vectorized batch executor (DESIGN.md section 10).

   The contract under test: [Exec.batch_exec] selects between the
   row-at-a-time and batched push pipelines, and the three executor modes
   (materializing, row pipelined, batch pipelined) are observationally
   identical — same row lists (same rows in the same order), same
   work-counter totals — for the whole paper workload, for fixed fused
   plans, for random plans, at batch sizes 1/3/64 (singleton batches and
   ragged tails included) and at every pool size when the plan contains
   parallel operators.  Only the allocation profile may differ (bench b15
   measures that difference). *)

open Njq_adl
open Dsl
module Gen = Njq_workload.Generator
module Queries = Njq_workload.Queries
module Strategy = Njq_core.Strategy
module Plan = Njq_engine.Plan
module Exec = Njq_engine.Exec
module Planner = Njq_engine.Planner
module Pool = Njq_engine.Pool
module Batch = Njq_engine.Batch

let with_exec ~pipeline ~batch f =
  let prev_p = !Exec.pipeline_exec and prev_b = !Exec.batch_exec in
  Exec.pipeline_exec := pipeline;
  Exec.batch_exec := batch;
  Fun.protect
    ~finally:(fun () ->
      Exec.pipeline_exec := prev_p;
      Exec.batch_exec := prev_b)
    f

let with_batch_size n f =
  let prev = !Batch.size in
  Batch.set_size n;
  Fun.protect ~finally:(fun () -> Batch.size := prev) f

let with_domains k f =
  let prev = Pool.domains () in
  Pool.set_domains k;
  Fun.protect ~finally:(fun () -> Pool.set_domains prev) f

let with_par_threshold t f =
  let prev = !Planner.par_threshold in
  Planner.par_threshold := t;
  Fun.protect ~finally:(fun () -> Planner.par_threshold := prev) f

let snapshot = Alcotest.(list (pair string int))
let row_list = Alcotest.(list Util.value)

(* The three executor modes.  The batched paths only engage under the
   pipelined executor, so "mat" doubles as the reference semantics. *)
let modes =
  [ ("mat", false, false); ("row", true, false); ("batch", true, true) ]

let run_mode ~pipeline ~batch cat plan =
  with_exec ~pipeline ~batch (fun () ->
      Counters.reset ();
      let rows = Exec.rows cat plan in
      (rows, Counters.snapshot ()))

(* Check that every mode, at every given batch size, produces the
   reference mode's rows (in order) and counter totals. *)
let check_modes_agree ?(sizes = [ 1; 3; 64 ]) name cat plan =
  let ref_rows, ref_counters = run_mode ~pipeline:false ~batch:false cat plan in
  List.iter
    (fun bs ->
      with_batch_size bs (fun () ->
          List.iter
            (fun (mode, pipeline, batch) ->
              let rows, counters = run_mode ~pipeline ~batch cat plan in
              let tag = Printf.sprintf "%s [%s, size %d]" name mode bs in
              Alcotest.check row_list (tag ^ ": rows (and their order)")
                ref_rows rows;
              Alcotest.check snapshot (tag ^ ": counter totals") ref_counters
                counters)
            modes))
    sizes

(* ------------------------------------------------------------------ *)
(* Paper workload: every corpus query, optimized and planned, agrees
   across all three modes and batch sizes. *)

let test_workload_modes_agree () =
  let cat = Gen.catalog { (Gen.scaled ~seed:7 48) with Gen.dangling_rate = 0.0 } in
  List.iter
    (fun (q : Queries.query) ->
      let plan = Planner.plan (Strategy.optimize cat (Queries.to_adl q)) in
      check_modes_agree q.Queries.id cat plan)
    (Queries.all @ Queries.extended)

(* ------------------------------------------------------------------ *)
(* Fixed fused plans covering the batch kernels: compiled column
   predicates (int/float/string constants), the single-key hash join
   specialization, semi/anti/outer joins, set ops through the shared
   dedup sink, nestjoin grouping, renames, and a breaker (sort) fed by a
   batched input. *)

let fused_plans () =
  let chain =
    Plan.ProjectOp
      ( [ "oid"; "pp" ],
        Plan.MapOp
          { var = "p";
            body =
              tuple
                [ ("oid", var "p" $. "oid");
                  ("pp", mul (var "p" $. "price") (int 2));
                  ("color", var "p" $. "color") ];
            input =
              Plan.Filter
                { var = "p"; pred = gt (var "p" $. "price") (int 5);
                  input = Plan.Scan "PART" } } )
  in
  (* Column kernel on a string attribute plus a conjunction: exercises
     the boxed-column fallback and per-row short-circuit. *)
  let str_filter =
    Plan.Filter
      { var = "p";
        pred =
          eq (var "p" $. "color") (str "red")
          &&& lt (var "p" $. "price") (int 9);
        input = Plan.Scan "PART" }
  in
  (* Comparing an int column against a string constant: the kernel must
     fold the rank comparison to a constant, same as Eval would. *)
  let mixed_rank =
    Plan.Filter
      { var = "p"; pred = lt (var "p" $. "price") (str "zzz");
        input = Plan.Scan "PART" }
  in
  let probe kind =
    Plan.JoinOp
      { algo = Plan.Hash; kind; xvar = "d"; yvar = "s";
        keys = [ (var "d" $. "supplier", var "s" $. "soid") ];
        residual = Expr.true_;
        left =
          Plan.Filter
            { var = "d"; pred = ge (count (var "d" $. "supply")) (int 0);
              input = Plan.Scan "DELIVERY" };
        right =
          Plan.MapOp
            { var = "s";
              body =
                tuple
                  [ ("soid", var "s" $. "oid"); ("sname", var "s" $. "sname") ];
              input = Plan.Scan "SUPPLIER" } }
  in
  (* Multi-key join: takes the KTbl path rather than the single-key
     specialization. *)
  let two_key =
    Plan.JoinOp
      { algo = Plan.Hash; kind = Expr.Inner; xvar = "a"; yvar = "b";
        keys =
          [ (var "a" $. "oid", var "b" $. "k");
            (var "a" $. "color", var "b" $. "kc") ];
        residual = Expr.true_; left = Plan.Scan "PART";
        right =
          Plan.MapOp
            { var = "q";
              body =
                tuple
                  [ ("k", var "q" $. "oid"); ("kc", var "q" $. "color") ];
              input = Plan.Scan "PART" } }
  in
  let union_plan =
    Plan.UnionOp
      ( Plan.Filter
          { var = "p"; pred = eq (var "p" $. "color") (str "red");
            input = Plan.Scan "PART" },
        Plan.Filter
          { var = "p"; pred = gt (var "p" $. "price") (int 10);
            input = Plan.Scan "PART" } )
  in
  let diff_plan =
    Plan.DiffOp
      ( Plan.Scan "PART",
        Plan.Filter
          { var = "p"; pred = gt (var "p" $. "price") (int 5);
            input = Plan.Scan "PART" } )
  in
  let nest_plan =
    Plan.NestjoinOp
      { algo = Plan.Hash; xvar = "s"; yvar = "d";
        keys = [ (var "s" $. "oid", var "d" $. "supplier") ];
        residual = Expr.true_; body = var "d" $. "date"; attr = "delivered";
        left = Plan.Scan "SUPPLIER"; right = Plan.Scan "DELIVERY" }
  in
  let rename_plan =
    Plan.RenameOp
      ( [ ("pname", "part_name") ],
        Plan.Filter
          { var = "p"; pred = gt (var "p" $. "price") (int 3);
            input = Plan.Scan "PART" } )
  in
  (* A breaker downstream of batched inputs: sort-merge buffers both
     sides, so batches must materialize correctly at the boundary. *)
  let sort_join =
    Plan.JoinOp
      { algo = Plan.Sort_merge; kind = Expr.Inner; xvar = "d"; yvar = "s";
        keys = [ (var "d" $. "supplier", var "s" $. "soid") ];
        residual = Expr.true_;
        left =
          Plan.Filter
            { var = "d"; pred = ge (count (var "d" $. "supply")) (int 0);
              input = Plan.Scan "DELIVERY" };
        right =
          Plan.MapOp
            { var = "s";
              body =
                tuple
                  [ ("soid", var "s" $. "oid"); ("sname", var "s" $. "sname") ];
              input = Plan.Scan "SUPPLIER" } }
  in
  let flatten_plan =
    Plan.FlattenOp
      (Plan.MapOp
         { var = "s"; body = var "s" $. "parts_supplied";
           input =
             Plan.Filter
               { var = "s";
                 pred = ge (count (var "s" $. "parts_supplied")) (int 1);
                 input = Plan.Scan "SUPPLIER" } })
  in
  [ ("chain", chain); ("str_filter", str_filter); ("mixed_rank", mixed_rank);
    ("probe_inner", probe Expr.Inner); ("probe_semi", probe Expr.Semi);
    ("probe_anti", probe Expr.Anti);
    ("probe_outer", probe (Expr.LeftOuter [ "soid"; "sname" ]));
    ("two_key", two_key); ("union", union_plan); ("diff", diff_plan);
    ("nest", nest_plan); ("rename", rename_plan); ("sort_join", sort_join);
    ("flatten", flatten_plan) ]

let test_fused_plans_agree () =
  let cat = Gen.catalog { (Gen.scaled ~seed:1 64) with Gen.dangling_rate = 0.0 } in
  List.iter (fun (name, plan) -> check_modes_agree name cat plan) (fused_plans ())

(* ------------------------------------------------------------------ *)
(* Parallel interop: morsel-over-batch ParFilter/ParMapOp and the
   parallelized corpus agree across modes at 1/2/4 domains.  A single
   batch size keeps the pool matrix affordable; size 3 guarantees ragged
   tails inside every chunk. *)

let test_parallel_modes_agree () =
  let cat = Gen.catalog { (Gen.scaled ~seed:3 48) with Gen.dangling_rate = 0.0 } in
  let par_chain =
    Plan.MapOp
      { var = "p";
        body =
          tuple
            [ ("oid", var "p" $. "oid"); ("pp", mul (var "p" $. "price") (int 2)) ];
        input =
          Plan.ParFilter
            { var = "p"; pred = gt (var "p" $. "price") (int 5);
              input = Plan.Scan "PART" } }
  in
  let par_map =
    Plan.ParMapOp
      { var = "p"; body = var "p" $. "pname";
        input =
          Plan.Filter
            { var = "p"; pred = gt (var "p" $. "price") (int 2);
              input = Plan.Scan "PART" } }
  in
  let corpus =
    List.map
      (fun (q : Queries.query) ->
        let seq = Planner.plan (Strategy.optimize cat (Queries.to_adl q)) in
        ( q.Queries.id,
          with_par_threshold 1 (fun () -> Planner.parallelize cat seq) ))
      Queries.all
  in
  List.iter
    (fun k ->
      with_domains k (fun () ->
          List.iter
            (fun (name, plan) ->
              check_modes_agree ~sizes:[ 3 ]
                (Printf.sprintf "%s at %d domains" name k)
                cat plan)
            (("par_chain", par_chain) :: ("par_map", par_map) :: corpus)))
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Batch module unit tests: view windows, ragged builder tails,
   selection-vector compaction. *)

let test_batch_views () =
  let rows = Array.init 10 (fun i -> Value.VInt i) in
  (* Windowed views over a shared array reproduce the array. *)
  let got = ref [] in
  let off = ref 0 in
  while !off < Array.length rows do
    let len = min 3 (Array.length rows - !off) in
    Batch.iter (fun v -> got := v :: !got) (Batch.view rows ~off:!off ~len);
    off := !off + len
  done;
  Alcotest.check row_list "view windows cover the array (tail of 1)"
    (Array.to_list rows) (List.rev !got)

let test_batch_builder_tail () =
  with_batch_size 4 (fun () ->
      let emitted = ref [] in
      let bld = Batch.builder (fun b -> emitted := Batch.live b :: !emitted) in
      for i = 1 to 10 do
        Batch.add bld (Value.VInt i)
      done;
      Batch.flush bld;
      Alcotest.(check (list int))
        "builder emits full batches then the ragged tail" [ 2; 4; 4 ]
        !emitted)

let test_batch_selection () =
  let rows = Array.init 8 (fun i -> Value.VInt i) in
  let b = Batch.of_array rows in
  Batch.keep b (fun j -> j mod 2 = 0);
  Alcotest.(check int) "first keep" 4 (Batch.live b);
  (* Second keep compacts the existing selection in place. *)
  Batch.keep_rows b (fun v -> Value.compare v (Value.VInt 2) > 0);
  Alcotest.(check int) "second keep shrinks" 2 (Batch.live b);
  let got = ref [] in
  Batch.iter (fun v -> got := v :: !got) b;
  Alcotest.check row_list "survivors in physical order"
    [ Value.VInt 4; Value.VInt 6 ]
    (List.rev !got)

let test_project_sorted_agrees () =
  let row =
    Value.tuple
      [ ("b", Value.VInt 2); ("a", Value.VInt 1); ("c", Value.VInt 3) ]
  in
  let attrs = [ "c"; "a" ] in
  let sorted = List.sort_uniq String.compare attrs in
  Alcotest.check Util.value "project_sorted matches project"
    (Value.project row attrs)
    (Value.project_sorted row sorted)

(* ------------------------------------------------------------------ *)
(* Property: random rewritten query plans agree across all three modes
   on the ordered row list and counters, at a ragged batch size. *)

let prop_batch_differential =
  Util.qcheck ~count:150 "batched executor matches row-at-a-time"
    Util.arbitrary_xy_pred_and_tables
    (fun (pred, tables) ->
      let cat = Util.xy_catalog tables in
      let q = select "x" (table "X") pred in
      let plan = Planner.plan (Strategy.optimize cat q) in
      let row_rows, row_counters = run_mode ~pipeline:true ~batch:false cat plan in
      with_batch_size 3 (fun () ->
          let b_rows, b_counters = run_mode ~pipeline:true ~batch:true cat plan in
          List.length row_rows = List.length b_rows
          && List.for_all2 Value.equal row_rows b_rows
          && row_counters = b_counters))

let () =
  Alcotest.run "batch"
    [ ( "modes",
        [ Alcotest.test_case "workload modes agree" `Quick
            test_workload_modes_agree;
          Alcotest.test_case "fused plans agree (incl. order)" `Quick
            test_fused_plans_agree;
          Alcotest.test_case "parallel interop at 1/2/4 domains" `Quick
            test_parallel_modes_agree ] );
      ( "batch module",
        [ Alcotest.test_case "view windows" `Quick test_batch_views;
          Alcotest.test_case "builder ragged tail" `Quick
            test_batch_builder_tail;
          Alcotest.test_case "selection compaction" `Quick test_batch_selection;
          Alcotest.test_case "project_sorted agrees" `Quick
            test_project_sorted_agrees ] );
      ("properties", [ prop_batch_differential ]) ]
