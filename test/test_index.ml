(* Tests for base-table indexes and the access-path layer (ISSUE 5):

   - Catalog index mechanics: creation/validation, point and range
     lookups in canonical row order, invalidation + lazy rebuild on
     [set_rows], multi-attribute keys.
   - Planner selection: with statistics, selective sargable predicates
     plan as IndexScan / IndexJoin (including through the planner's own
     rename over the inner scan), and the paths stay off when forced,
     disabled, or not cheaper.
   - Differential properties: IndexScan is observationally equal to
     Filter(Scan) — same rows, same order — and IndexJoin to the
     hash/nested-loop join it replaces, in both executor modes at 1/2/4
     domains.
   - Plancache: hit/miss accounting, LRU eviction, text normalization
     and catalog-epoch invalidation. *)

open Njq_adl
open Dsl
module Gen = Njq_workload.Generator
module Strategy = Njq_core.Strategy
module Plan = Njq_engine.Plan
module Exec = Njq_engine.Exec
module Planner = Njq_engine.Planner
module Plancache = Njq_engine.Plancache
module Pool = Njq_engine.Pool

let row_list = Alcotest.(list Util.value)

let with_pipeline flag f =
  let prev = !Exec.pipeline_exec in
  Exec.pipeline_exec := flag;
  Fun.protect ~finally:(fun () -> Exec.pipeline_exec := prev) f

let with_domains k f =
  let prev = Pool.domains () in
  Pool.set_domains k;
  Fun.protect ~finally:(fun () -> Pool.set_domains prev) f

let rows_in_mode flag cat plan = with_pipeline flag (fun () -> Exec.rows cat plan)

(* Both plans must produce the same ordered row list in both executor
   modes (and the index plan must agree with itself across modes). *)
let check_plans_equal name cat reference candidate =
  let want = rows_in_mode false cat reference in
  Alcotest.check row_list (name ^ ": materializing") want
    (rows_in_mode false cat candidate);
  Alcotest.check row_list (name ^ ": pipelined") want
    (rows_in_mode true cat candidate)

(* ------------------------------------------------------------------ *)
(* Catalog index mechanics *)

let get_index cat name =
  match Catalog.find_index cat name with
  | Some idx -> idx
  | None -> Alcotest.failf "index %s not found" name

let test_create_and_lookup () =
  let cat = Util.small_catalog () in
  let name =
    Catalog.create_index cat ~table:"PART" ~kind:Catalog.Hash_index
      ~attrs:[ "color" ] ()
  in
  Alcotest.(check string) "derived name" "PART_color_hash" name;
  Alcotest.(check bool) "has_indexes" true (Catalog.has_indexes cat);
  let idx = get_index cat name in
  let reds = Catalog.index_lookup_eq cat idx [| Value.string "red" |] in
  (* Exactly the rows a filtered scan returns, in the same (canonical)
     order. *)
  let scan_reds =
    List.filter
      (fun r -> Value.equal (Value.field r "color") (Value.string "red"))
      (Catalog.rows cat "PART")
  in
  Alcotest.check row_list "matches filtered scan" scan_reds reds;
  Alcotest.check row_list "miss is empty" []
    (Catalog.index_lookup_eq cat idx [| Value.string "mauve" |])

let test_create_validation () =
  let cat = Util.small_catalog () in
  let expect_invalid what f =
    match f () with
    | (_ : string) -> Alcotest.failf "%s: expected Invalid_argument" what
    | exception Invalid_argument _ -> ()
  in
  (match
     Catalog.create_index cat ~table:"NOPE" ~kind:Catalog.Hash_index
       ~attrs:[ "a" ] ()
   with
   | (_ : string) -> Alcotest.fail "unknown table accepted"
   | exception Catalog.Unknown_table t ->
     Alcotest.(check string) "unknown table" "NOPE" t);
  expect_invalid "unknown attr" (fun () ->
      Catalog.create_index cat ~table:"PART" ~kind:Catalog.Hash_index
        ~attrs:[ "nope" ] ());
  expect_invalid "empty attrs" (fun () ->
      Catalog.create_index cat ~table:"PART" ~kind:Catalog.Hash_index ~attrs:[]
        ());
  expect_invalid "duplicate attrs" (fun () ->
      Catalog.create_index cat ~table:"PART" ~kind:Catalog.Hash_index
        ~attrs:[ "color"; "color" ] ())

let test_range_lookup () =
  let cat = Util.small_catalog () in
  let name =
    Catalog.create_index cat ~table:"PART" ~kind:Catalog.Sorted_index
      ~attrs:[ "price" ] ()
  in
  let idx = get_index cat name in
  let prices lo hi =
    List.filter
      (fun r ->
        let p = Value.field r "price" in
        Value.compare p (Value.int lo) >= 0
        && Value.compare p (Value.int hi) <= 0)
      (Catalog.rows cat "PART")
  in
  (* PART prices are 10, 5, 25, 50. *)
  Alcotest.check row_list "closed range [5,25]" (prices 5 25)
    (Catalog.index_lookup_range cat idx
       ~lo:(Some (Value.int 5, true))
       ~hi:(Some (Value.int 25, true)));
  Alcotest.check row_list "open lower bound (5,25]" (prices 6 25)
    (Catalog.index_lookup_range cat idx
       ~lo:(Some (Value.int 5, false))
       ~hi:(Some (Value.int 25, true)));
  Alcotest.check row_list "unbounded below" (prices min_int 10)
    (Catalog.index_lookup_range cat idx ~lo:None
       ~hi:(Some (Value.int 10, true)));
  Alcotest.check row_list "unbounded above" (prices 25 max_int)
    (Catalog.index_lookup_range cat idx
       ~lo:(Some (Value.int 25, true))
       ~hi:None);
  Alcotest.check row_list "unbounded both = whole extent"
    (Catalog.rows cat "PART")
    (Catalog.index_lookup_range cat idx ~lo:None ~hi:None)

let test_multi_attr_and_invalidation () =
  let cat = Util.small_catalog () in
  let name =
    Catalog.create_index cat ~table:"PART" ~kind:Catalog.Hash_index
      ~attrs:[ "color"; "price" ] ()
  in
  let idx = get_index cat name in
  let hit = Catalog.index_lookup_eq cat idx [| Value.string "red"; Value.int 25 |] in
  Alcotest.(check int) "composite key hit" 1 (List.length hit);
  (* Arity is checked. *)
  (match Catalog.index_lookup_eq cat idx [| Value.string "red" |] with
   | _ -> Alcotest.fail "arity mismatch accepted"
   | exception Invalid_argument _ -> ());
  (* Replacing the extent invalidates; the next lookup sees the new rows
     (lazy rebuild), and the epoch moved. *)
  let epoch0 = Catalog.epoch cat in
  Catalog.set_rows cat "PART"
    [ Util.part ~oid:7 ~pname:"axle" ~price:25 ~color:"red" ];
  Alcotest.(check bool) "epoch bumped" true (Catalog.epoch cat > epoch0);
  let hit' = Catalog.index_lookup_eq cat idx [| Value.string "red"; Value.int 25 |] in
  Alcotest.check row_list "rebuilt over new rows"
    [ Util.part ~oid:7 ~pname:"axle" ~price:25 ~color:"red" ]
    hit'

(* ------------------------------------------------------------------ *)
(* Planner selection *)

let with_indexes flag f =
  let prev = !Planner.use_indexes in
  Planner.use_indexes := flag;
  Fun.protect ~finally:(fun () -> Planner.use_indexes := prev) f

let workload_cat n = Gen.catalog { (Gen.scaled ~seed:11 n) with Gen.dangling_rate = 0.0 }

let test_planner_picks_point () =
  let cat = workload_cat 128 in
  ignore
    (Catalog.create_index cat ~table:"PART" ~kind:Catalog.Hash_index
       ~attrs:[ "color" ] ());
  let q = select "p" (table "PART") (eq (var "p" $. "color") (str "red")) in
  (match Planner.plan ~cat q with
   | Plan.IndexScan { lookup = Plan.LPoint _; residual; _ } ->
     Alcotest.(check bool) "no residual" true (Expr.is_true residual)
   | p -> Alcotest.failf "expected IndexScan, got %a" Plan.pp p);
  (* The residual keeps conjuncts the index cannot answer. *)
  let q2 =
    select "p" (table "PART")
      (eq (var "p" $. "color") (str "red") &&& gt (var "p" $. "price") (int 100))
  in
  (match Planner.plan ~cat q2 with
   | Plan.IndexScan { residual; _ } ->
     Alcotest.(check bool) "residual kept" false (Expr.is_true residual)
   | p -> Alcotest.failf "expected IndexScan with residual, got %a" Plan.pp p);
  (* Master switch and forced algorithms keep the scan plans. *)
  with_indexes false (fun () ->
      match Planner.plan ~cat q with
      | Plan.Filter { input = Plan.Scan "PART"; _ } -> ()
      | p -> Alcotest.failf "use_indexes=false: got %a" Plan.pp p);
  match Planner.plan ~algo:(Planner.Force Plan.Hash) ~cat q with
  | Plan.Filter _ -> ()
  | p -> Alcotest.failf "forced algo must skip access paths, got %a" Plan.pp p

let test_planner_picks_range () =
  let cat = workload_cat 128 in
  ignore
    (Catalog.create_index cat ~table:"PART" ~kind:Catalog.Sorted_index
       ~attrs:[ "price" ] ());
  let q =
    select "p" (table "PART")
      (gt (var "p" $. "price") (int 10) &&& lt (var "p" $. "price") (int 40))
  in
  match Planner.plan ~cat q with
  | Plan.IndexScan { lookup = Plan.LRange { lo = Some _; hi = Some _ }; _ } -> ()
  | p -> Alcotest.failf "expected range IndexScan, got %a" Plan.pp p

let test_planner_picks_index_join_through_rename () =
  let cat = workload_cat 128 in
  ignore
    (Catalog.create_index cat ~table:"SUPPLIER" ~kind:Catalog.Hash_index
       ~attrs:[ "oid" ] ());
  (* Both extents carry "oid", so the planner renames the inner scan; the
     access path must still fire and absorb the rename. *)
  let adl, _ =
    Njq_oosql.Translate.query_string Njq_workload.Queries.schema
      {| select d.date from d in DELIVERY, s in SUPPLIER
         where d.supplier = s.oid |}
  in
  let final = Strategy.optimize cat adl in
  let rec find_idx_join p =
    match p with
    | Plan.IndexJoin { rename; _ } -> Some rename
    | _ -> List.find_map find_idx_join (Plan.children p)
  in
  let plan = Planner.plan ~cat final in
  match find_idx_join plan with
  | Some rename ->
    Alcotest.(check bool) "rename absorbed" true (rename <> [])
  | None -> Alcotest.failf "expected IndexJoin, got %a" Plan.pp plan

let test_unselective_keeps_scan () =
  let cat = workload_cat 128 in
  ignore
    (Catalog.create_index cat ~table:"PART" ~kind:Catalog.Sorted_index
       ~attrs:[ "price" ] ());
  (* price >= 0 matches everything: the cost model must keep the scan. *)
  let q = select "p" (table "PART") (ge (var "p" $. "price") (int 0)) in
  match Planner.plan ~cat q with
  | Plan.Filter _ -> ()
  | p -> Alcotest.failf "unselective predicate should scan, got %a" Plan.pp p

(* ------------------------------------------------------------------ *)
(* Differential properties: random XY databases; the index plans must be
   observationally equal to the scan plans they replace, in both executor
   modes, at 1/2/4 domains. *)

let indexed_xy_catalog tables =
  let cat = Util.xy_catalog tables in
  let dh =
    Catalog.create_index cat ~table:"Y" ~kind:Catalog.Hash_index
      ~attrs:[ "d" ] ()
  in
  let ds =
    Catalog.create_index cat ~table:"Y" ~kind:Catalog.Sorted_index
      ~attrs:[ "d" ] ()
  in
  (cat, dh, ds)

let sorted_rows rs = List.sort Value.compare rs

let prop_index_scan_differential =
  Util.qcheck ~count:150 "IndexScan matches Filter(Scan) in both modes"
    QCheck.(
      make
        Gen.(pair Util.gen_xy_tables (int_range 0 4))
        ~print:(fun ((xs, ys), k) ->
          Fmt.str "k=%d@.X=%a@.Y=%a" k (Fmt.Dump.list Value.pp) xs
            (Fmt.Dump.list Value.pp) ys))
    (fun (tables, k) ->
      let cat, dh, ds = indexed_xy_catalog tables in
      let pred = eq (var "y" $. "d") (int k) in
      let scan = Plan.Filter { var = "y"; pred; input = Plan.Scan "Y" } in
      let point =
        Plan.IndexScan
          { table = "Y"; index = dh; var = "y"; lookup = Plan.LPoint [ int k ];
            residual = Expr.true_; rename = [] }
      in
      let range =
        Plan.IndexScan
          { table = "Y"; index = ds; var = "y";
            lookup =
              Plan.LRange
                { lo = Some (int k, true); hi = Some (int k, true) };
            residual = Expr.true_; rename = [] }
      in
      let want = rows_in_mode false cat scan in
      List.for_all
        (fun candidate ->
          List.for_all
            (fun mode ->
              let got = rows_in_mode mode cat candidate in
              List.length got = List.length want
              && List.for_all2 Value.equal want got)
            [ false; true ])
        [ point; range ])

let prop_index_join_differential =
  Util.qcheck ~count:120 "IndexJoin matches hash join in both modes"
    QCheck.(
      make
        Gen.(pair Util.gen_xy_tables (oneofl [ Expr.Inner; Expr.Semi; Expr.Anti ]))
        ~print:(fun ((xs, ys), kind) ->
          Fmt.str "kind=%s@.X=%a@.Y=%a"
            (match kind with
             | Expr.Inner -> "inner"
             | Expr.Semi -> "semi"
             | Expr.Anti -> "anti"
             | Expr.LeftOuter _ -> "outer")
            (Fmt.Dump.list Value.pp) xs (Fmt.Dump.list Value.pp) ys))
    (fun (tables, kind) ->
      let cat, dh, _ = indexed_xy_catalog tables in
      let keys = [ (var "x" $. "a", var "y" $. "d") ] in
      let hash =
        Plan.JoinOp
          { algo = Plan.Hash; kind; xvar = "x"; yvar = "y"; keys;
            residual = Expr.true_; left = Plan.Scan "X"; right = Plan.Scan "Y" }
      in
      let idx =
        Plan.IndexJoin
          { kind; xvar = "x"; yvar = "y"; table = "Y"; index = dh;
            keys = [ var "x" $. "a" ]; residual = Expr.true_; rename = [];
            left = Plan.Scan "X" }
      in
      let want = rows_in_mode false cat hash in
      (* Semi/Anti preserve the left order exactly; Inner row order is
         probe-driven and may legitimately differ between the two
         algorithms, so it is compared as a sorted list. *)
      let normalize =
        match kind with
        | Expr.Inner -> sorted_rows
        | _ -> Fun.id
      in
      let want = normalize want in
      List.for_all
        (fun mode ->
          let got = normalize (rows_in_mode mode cat idx) in
          List.length got = List.length want
          && List.for_all2 Value.equal want got)
        [ false; true ])

let test_differential_across_domains () =
  let tables =
    ( [ Util.row [ ("a", Value.int 1); ("c", Value.set []) ];
        Util.row [ ("a", Value.int 2); ("c", Value.set [ Value.int 1 ]) ];
        Util.row [ ("a", Value.int 3); ("c", Value.set []) ] ],
      List.init 9 (fun i ->
          Util.row [ ("d", Value.int (i mod 4)); ("e", Value.int i) ]) )
  in
  let cat, dh, _ = indexed_xy_catalog tables in
  let scan =
    Plan.Filter
      { var = "y"; pred = eq (var "y" $. "d") (int 2); input = Plan.Scan "Y" }
  in
  let point =
    Plan.IndexScan
      { table = "Y"; index = dh; var = "y"; lookup = Plan.LPoint [ int 2 ];
        residual = Expr.true_; rename = [] }
  in
  let semi =
    Plan.JoinOp
      { algo = Plan.Hash; kind = Expr.Semi; xvar = "x"; yvar = "y";
        keys = [ (var "x" $. "a", var "y" $. "d") ]; residual = Expr.true_;
        left = Plan.Scan "X"; right = Plan.Scan "Y" }
  in
  let isemi =
    Plan.IndexJoin
      { kind = Expr.Semi; xvar = "x"; yvar = "y"; table = "Y"; index = dh;
        keys = [ var "x" $. "a" ]; residual = Expr.true_; rename = [];
        left = Plan.Scan "X" }
  in
  List.iter
    (fun k ->
      with_domains k (fun () ->
          check_plans_equal (Printf.sprintf "point at %d domains" k) cat scan
            point;
          check_plans_equal (Printf.sprintf "semi at %d domains" k) cat semi
            isemi))
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Plan cache *)

let dummy_plan n = Plan.Materialized [ Value.int n ]

let test_plancache_hit_miss () =
  Plancache.clear ();
  let cat = Util.small_catalog () in
  let h0 = Plancache.hits () and m0 = Plancache.misses () in
  let derived = ref 0 in
  let derive n _ = incr derived; dummy_plan n in
  let p1 = Plancache.find_or_derive cat "select 1" ~derive:(derive 1) in
  let p2 = Plancache.find_or_derive cat "select 1" ~derive:(derive 99) in
  Alcotest.(check int) "derived once" 1 !derived;
  Alcotest.(check bool) "hit returns the stored plan" true (p1 == p2);
  Alcotest.(check int) "one hit" 1 (Plancache.hits () - h0);
  Alcotest.(check int) "one miss" 1 (Plancache.misses () - m0);
  (* Whitespace-insensitive keys. *)
  let p3 = Plancache.find_or_derive cat "  select \n  1  " ~derive:(derive 99) in
  Alcotest.(check bool) "normalized text hits" true (p1 == p3);
  (* A different options string is a different prepared statement. *)
  ignore (Plancache.find_or_derive cat ~options:"other" "select 1" ~derive:(derive 2));
  Alcotest.(check int) "options split the key" 2 !derived

let test_plancache_lru_eviction () =
  Plancache.clear ();
  let cat = Util.small_catalog () in
  let prev = !Plancache.capacity in
  Plancache.capacity := 2;
  Fun.protect
    ~finally:(fun () -> Plancache.capacity := prev)
    (fun () ->
      let e0 = Plancache.evictions () in
      ignore (Plancache.find_or_derive cat "q1" ~derive:(fun _ -> dummy_plan 1));
      ignore (Plancache.find_or_derive cat "q2" ~derive:(fun _ -> dummy_plan 2));
      (* Touch q1 so q2 is the least recently used entry. *)
      ignore (Plancache.find_or_derive cat "q1" ~derive:(fun _ -> dummy_plan 9));
      ignore (Plancache.find_or_derive cat "q3" ~derive:(fun _ -> dummy_plan 3));
      Alcotest.(check int) "capacity respected" 2 (Plancache.size ());
      Alcotest.(check int) "one eviction" 1 (Plancache.evictions () - e0);
      let rederived = ref false in
      ignore
        (Plancache.find_or_derive cat "q1"
           ~derive:(fun _ -> rederived := true; dummy_plan 1));
      Alcotest.(check bool) "recently used q1 survived" false !rederived;
      ignore
        (Plancache.find_or_derive cat "q2"
           ~derive:(fun _ -> rederived := true; dummy_plan 2));
      Alcotest.(check bool) "LRU q2 was evicted" true !rederived)

let test_plancache_epoch_invalidation () =
  Plancache.clear ();
  let cat = Util.small_catalog () in
  let derived = ref 0 in
  let derive _ = incr derived; dummy_plan 1 in
  ignore (Plancache.find_or_derive cat "q" ~derive);
  ignore (Plancache.find_or_derive cat "q" ~derive);
  Alcotest.(check int) "cached across calls" 1 !derived;
  (* Any catalog change bumps the epoch: stale plans stop being served. *)
  Catalog.set_rows cat "PART" [];
  ignore (Plancache.find_or_derive cat "q" ~derive);
  Alcotest.(check int) "re-derived after epoch bump" 2 !derived;
  (* A different catalog never sees this catalog's plans. *)
  Plancache.clear ();
  derived := 0;
  let cat2 = Util.small_catalog () in
  ignore (Plancache.find_or_derive cat "q" ~derive);
  ignore (Plancache.find_or_derive cat2 "q" ~derive);
  Alcotest.(check int) "cache is per catalog" 2 !derived

let () =
  Alcotest.run "index"
    [ ( "catalog",
        [ Alcotest.test_case "create + point lookup" `Quick
            test_create_and_lookup;
          Alcotest.test_case "creation validation" `Quick test_create_validation;
          Alcotest.test_case "range lookup bounds" `Quick test_range_lookup;
          Alcotest.test_case "multi-attr key + invalidation" `Quick
            test_multi_attr_and_invalidation ] );
      ( "planner",
        [ Alcotest.test_case "point path chosen" `Quick test_planner_picks_point;
          Alcotest.test_case "range path chosen" `Quick test_planner_picks_range;
          Alcotest.test_case "index join through rename" `Quick
            test_planner_picks_index_join_through_rename;
          Alcotest.test_case "unselective keeps scan" `Quick
            test_unselective_keeps_scan ] );
      ( "differential",
        [ prop_index_scan_differential;
          prop_index_join_differential;
          Alcotest.test_case "fixed plans at 1/2/4 domains" `Quick
            test_differential_across_domains ] );
      ( "plancache",
        [ Alcotest.test_case "hit/miss, normalization, options" `Quick
            test_plancache_hit_miss;
          Alcotest.test_case "LRU eviction" `Quick test_plancache_lru_eviction;
          Alcotest.test_case "epoch invalidation" `Quick
            test_plancache_epoch_invalidation ] ) ]
