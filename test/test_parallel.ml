(* Tests for the multicore execution layer: the domain pool, the
   parallelize planner pass, and the domain-safety of shared engine state.

   The contract under test (DESIGN.md section 7): partition counts are
   fixed in the plan, not derived from the pool, so for a fixed plan both
   the result value and the full counter snapshot are independent of the
   pool size; and with the pool at one domain the planner emits exactly
   the sequential plans it emitted before this layer existed. *)

open Njq_adl
open Dsl
module Gen = Njq_workload.Generator
module Queries = Njq_workload.Queries
module Strategy = Njq_core.Strategy
module Plan = Njq_engine.Plan
module Exec = Njq_engine.Exec
module Planner = Njq_engine.Planner
module Pool = Njq_engine.Pool

let with_domains k f =
  let prev = Pool.domains () in
  Pool.set_domains k;
  Fun.protect ~finally:(fun () -> Pool.set_domains prev) f

let with_par_threshold t f =
  let prev = !Planner.par_threshold in
  Planner.par_threshold := t;
  Fun.protect ~finally:(fun () -> Planner.par_threshold := prev) f

let pool_sizes = [ 1; 2; 4 ]
let snapshot = Alcotest.(list (pair string int))

(* Counters introduced by the parallel operators themselves (partitioning
   passes); everything else must agree with the sequential run exactly. *)
let drop_par_counters =
  List.filter (fun (name, _) ->
      not (String.length name >= 4 && String.sub name 0 4 = "par_"))

let plan_string p = Fmt.str "%a" Plan.pp p

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Paper workload: every corpus query, optimized, planned sequentially,
   then run through the parallelize pass at several pool sizes. *)

let test_workload_parallel_matches_sequential () =
  let cat = Gen.catalog { (Gen.scaled ~seed:7 48) with Gen.dangling_rate = 0.0 } in
  List.iter
    (fun (q : Queries.query) ->
      let rewritten = Strategy.optimize cat (Queries.to_adl q) in
      let seq_plan = Planner.plan rewritten in
      Counters.reset ();
      let expected = Exec.run cat seq_plan in
      let seq_counters = Counters.snapshot () in
      let par_plan =
        with_par_threshold 1 (fun () -> Planner.parallelize cat seq_plan)
      in
      let reference = ref None in
      List.iter
        (fun k ->
          with_domains k (fun () ->
              Counters.reset ();
              let got = Exec.run cat par_plan in
              let snap = Counters.snapshot () in
              Alcotest.check Util.value
                (Printf.sprintf "%s value at %d domains" q.Queries.id k)
                expected got;
              Alcotest.check snapshot
                (Printf.sprintf "%s work counters at %d domains" q.Queries.id k)
                seq_counters
                (drop_par_counters snap);
              match !reference with
              | None -> reference := Some snap
              | Some s ->
                Alcotest.check snapshot
                  (Printf.sprintf "%s full snapshot at %d domains" q.Queries.id
                     k)
                  s snap))
        pool_sizes)
    (Queries.all @ Queries.extended)

(* ------------------------------------------------------------------ *)
(* A fixed parallel plan (partitioned semijoin + parallel PNHL, the b12
   shape): identical values and identical full counter snapshots across
   pool sizes, including the partitioning counters. *)

let test_fixed_plan_pool_invariance () =
  let cat =
    Gen.catalog
      { (Gen.scaled ~seed:3 96) with
        Gen.dangling_rate = 0.0;
        Gen.empty_rate = 0.0 }
  in
  let join_plan =
    Plan.ParJoinOp
      { kind = Expr.Semi; xvar = "s"; yvar = "d";
        keys = [ (var "s" $. "oid", var "d" $. "supplier") ];
        residual = Expr.true_; partitions = 8;
        left = Plan.Scan "SUPPLIER"; right = Plan.Scan "DELIVERY" }
  in
  let pnhl_plan =
    Plan.ParPnhl
      { attr = "parts_supplied"; elem_key = var "elem";
        row_key = var "row" $. "oid"; into = "parts_supplied";
        mem_budget = 12; left = Plan.Scan "SUPPLIER";
        right = Plan.Scan "PART" }
  in
  let outcomes =
    List.map
      (fun k ->
        with_domains k (fun () ->
            Counters.reset ();
            let v =
              Value.set [ Exec.run cat join_plan; Exec.run cat pnhl_plan ]
            in
            (k, v, Counters.snapshot ())))
      pool_sizes
  in
  match outcomes with
  | [] -> assert false
  | (_, v0, s0) :: rest ->
    List.iter
      (fun (k, v, s) ->
        Alcotest.check Util.value (Printf.sprintf "value at %d domains" k) v0 v;
        Alcotest.check snapshot
          (Printf.sprintf "counter snapshot at %d domains" k)
          s0 s)
      rest

(* ------------------------------------------------------------------ *)
(* Planner gating: with one domain, [plan ~cat] is exactly the sequential
   plan; with two domains and inputs above the threshold it rewrites the
   hot operators to their parallel variants. *)

let test_domains1_plans_identical () =
  let cat = Gen.catalog { (Gen.scaled ~seed:7 300) with Gen.dangling_rate = 0.0 } in
  List.iter
    (fun (q : Queries.query) ->
      let rewritten = Strategy.optimize cat (Queries.to_adl q) in
      let seq = plan_string (Planner.plan rewritten) in
      let gated =
        with_domains 1 (fun () -> plan_string (Planner.plan ~cat rewritten))
      in
      Alcotest.(check string) q.Queries.id seq gated)
    (Queries.all @ Queries.extended)

let test_parallelize_applies_above_threshold () =
  let cat = Gen.catalog { (Gen.scaled ~seed:7 300) with Gen.dangling_rate = 0.0 } in
  let rewritten = Strategy.optimize cat (Queries.to_adl (Queries.find "EQ5")) in
  let planned =
    with_domains 2 (fun () -> plan_string (Planner.plan ~cat rewritten))
  in
  Alcotest.(check bool)
    (Printf.sprintf "parallel operator in %s" planned)
    true
    (contains planned "par_");
  (* Below the threshold nothing is rewritten, even with a large pool. *)
  let small = Gen.catalog { (Gen.scaled ~seed:7 16) with Gen.dangling_rate = 0.0 } in
  let rewritten = Strategy.optimize small (Queries.to_adl (Queries.find "EQ5")) in
  let planned =
    with_domains 4 (fun () -> plan_string (Planner.plan ~cat:small rewritten))
  in
  Alcotest.(check bool) "small inputs stay sequential" false
    (contains planned "par_")

(* ------------------------------------------------------------------ *)
(* Domain-safety of shared state: concurrent Value.hash calls against the
   domain-local memo agree with the main domain's hashes. *)

let test_hash_memo_across_domains () =
  let values =
    List.init 64 (fun i ->
        Value.set
          [ Value.int i; Value.set [ Value.int (i * 7); Value.string "x" ] ])
  in
  let expected = List.map Value.hash values in
  let arr = Array.of_list values in
  with_domains 4 (fun () ->
      let got = Pool.run (Array.length arr) (fun i -> Value.hash arr.(i)) in
      List.iteri
        (fun i h -> Alcotest.(check int) (Printf.sprintf "hash %d" i) h got.(i))
        expected)

(* ------------------------------------------------------------------ *)
(* Property: random rewritten query plans, parallelized with threshold 1,
   agree with the sequential engine at every pool size. *)

let prop_parallel_differential =
  Util.qcheck ~count:100 "parallelized plans match the sequential engine"
    Util.arbitrary_xy_pred_and_tables
    (fun (pred, tables) ->
      let cat = Util.xy_catalog tables in
      let q = select "x" (table "X") pred in
      let rewritten = Strategy.optimize cat q in
      let seq_plan = Planner.plan rewritten in
      let expected = Exec.run cat seq_plan in
      let par_plan =
        with_par_threshold 1 (fun () -> Planner.parallelize cat seq_plan)
      in
      List.for_all
        (fun k ->
          with_domains k (fun () -> Value.equal expected (Exec.run cat par_plan)))
        [ 2; 4 ])

let () =
  Alcotest.run "parallel"
    [ ( "engine",
        [ Alcotest.test_case "workload parallel matches sequential" `Quick
            test_workload_parallel_matches_sequential;
          Alcotest.test_case "fixed plan pool invariance" `Quick
            test_fixed_plan_pool_invariance;
          Alcotest.test_case "domains=1 plans identical" `Quick
            test_domains1_plans_identical;
          Alcotest.test_case "parallelize above threshold only" `Quick
            test_parallelize_applies_above_threshold;
          Alcotest.test_case "hash memo across domains" `Quick
            test_hash_memo_across_domains ] );
      ("properties", [ prop_parallel_differential ]) ]
