(* Larger-than-memory execution: rowcodec round trips, spill-file hygiene
   under mid-operator exceptions, NJQC binary catalog round trips, and
   budget-differential equivalence of the spilling operators (Grace join,
   PNHL, external sort) across all executor modes and domain counts. *)

open Njq_adl
open Dsl
module Plan = Njq_engine.Plan
module Exec = Njq_engine.Exec
module Memory = Njq_engine.Memory
module Rowcodec = Njq_engine.Rowcodec

(* ------------------------------------------------------------------ *)
(* Rowcodec *)

(* Random values biased toward the codec's edge cases: extreme ints
   (zigzag of min_int/max_int), non-finite floats, arbitrary-byte strings
   (interning), dates, oids, VNull, and VSet/VTuple nesting. *)
let gen_codec_value : Value.t QCheck.Gen.t =
  let open QCheck.Gen in
  let atom =
    oneof
      [ return Value.VNull;
        map Value.bool bool;
        map Value.int
          (oneof [ int; oneofl [ min_int; max_int; min_int + 1; -1; 0; 1 ] ]);
        map Value.float
          (oneofl
             [ 0.0; -0.0; 1.5; -3.25e300; 4.9e-324; infinity; neg_infinity ]);
        map Value.string (string_size (int_range 0 12));
        map Value.date (int_range 0 99991231);
        map Value.oid (oneof [ int_range 0 1_000_000; oneofl [ 0; max_int ] ])
      ]
  in
  sized @@ fix (fun self n ->
      if n = 0 then atom
      else
        frequency
          [ (3, atom);
            (1, map Value.set (list_size (int_range 0 4) (self (n / 2))));
            (1,
             map
               (fun vs ->
                 Value.tuple
                   (List.mapi (fun i v -> (Printf.sprintf "f%d" i, v)) vs))
               (list_size (int_range 0 3) (self (n / 2)))) ])

let prop_rowcodec_roundtrip =
  Util.qcheck ~count:300 "rowcodec round trip"
    (QCheck.make
       QCheck.Gen.(list_size (int_range 0 20) gen_codec_value)
       ~print:(Fmt.str "%a" (Fmt.Dump.list Value.pp)))
    (fun rows ->
      let enc = Rowcodec.encoder () in
      let buf = Buffer.create 256 in
      List.iter (fun v -> ignore (Rowcodec.encode_record enc buf v)) rows;
      let dec = Rowcodec.decoder (Buffer.contents buf) in
      let rec drain acc =
        match Rowcodec.decode_record dec with
        | Some v -> drain (v :: acc)
        | None -> List.rev acc
      in
      let back = drain [] in
      List.length back = List.length rows
      && List.for_all2 Value.equal rows back)

let test_spill_roundtrip () =
  let rows =
    List.init 100 (fun i ->
        Value.tuple
          [ ("k", Value.int i); ("v", Value.string (string_of_int i)) ])
  in
  let sp = Rowcodec.spill_create ~prefix:"njq-test" () in
  List.iter (fun r -> ignore (Rowcodec.spill_add sp r)) rows;
  Alcotest.(check int) "rows counted" 100 (Rowcodec.spill_rows sp);
  Alcotest.(check bool) "bytes counted" true (Rowcodec.spill_bytes sp > 0);
  Alcotest.(check (list Util.value)) "write order preserved" rows
    (Rowcodec.spill_read sp);
  Rowcodec.spill_remove sp;
  Rowcodec.spill_remove sp;
  (* idempotent *)
  Alcotest.(check bool) "file unlinked" false
    (Sys.file_exists (Rowcodec.spill_path sp));
  Alcotest.(check int) "unregistered" 0 (Rowcodec.live_spills ())

(* ------------------------------------------------------------------ *)
(* Temp-file hygiene: an exception in the middle of a spilling join must
   leave no files behind (operator Fun.protect cleanup, not the at_exit
   sweep). *)

let test_hygiene_on_exception () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "njq-spill-test-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Unix.putenv "NJQ_TMPDIR" dir;
  Fun.protect
    ~finally:(fun () ->
      (* "" falls back to the system temp dir (see Rowcodec.temp_dir). *)
      Unix.putenv "NJQ_TMPDIR" "";
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () ->
      Alcotest.(check string) "budget redirects spills" dir
        (Rowcodec.temp_dir ());
      let cat = Catalog.create () in
      Catalog.add_table cat ~name:"X"
        ~row_type:(Vtype.tuple [ ("a", Vtype.TInt) ])
        (List.init 24 (fun i -> Value.tuple [ ("a", Value.int i) ]));
      Catalog.add_table cat ~name:"Y"
        ~row_type:(Vtype.tuple [ ("d", Vtype.TInt) ])
        (List.init 24 (fun i -> Value.tuple [ ("d", Value.int i) ]));
      (* The residual dereferences a missing attribute, so the join raises
         after the partition files have been written. *)
      let bad =
        Plan.GraceJoin
          { kind = Expr.Inner; xvar = "x"; yvar = "y";
            keys = [ (var "x" $. "a", var "y" $. "d") ];
            residual = eq (var "x" $. "missing") (int 0); mem_budget = 2;
            left = Plan.Scan "X"; right = Plan.Scan "Y" }
      in
      (match Exec.run cat bad with
       | _ -> Alcotest.fail "expected the residual to raise"
       | exception (Value.Type_error _ | Exec.Exec_error _) -> ());
      Alcotest.(check int) "no live spills" 0 (Rowcodec.live_spills ());
      Alcotest.(check (array string)) "tmpdir swept" [||] (Sys.readdir dir))

(* ------------------------------------------------------------------ *)
(* NJQC binary catalog *)

let test_njqc_roundtrip () =
  let cat = Util.small_catalog () in
  Catalog.ensure_oid_above cat 100;
  let path = Filename.temp_file "njq-test-cat" ".njqc" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Rowcodec.save_catalog cat path;
      Alcotest.(check bool) "magic recognized" true (Rowcodec.is_njqc path);
      let cat' = Catalog.load_binary path in
      Alcotest.(check (list string)) "tables" (Catalog.table_names cat)
        (Catalog.table_names cat');
      List.iter
        (fun t ->
          Alcotest.check Util.vtype (t ^ " row type") (Catalog.row_type cat t)
            (Catalog.row_type cat' t);
          Alcotest.(check (list Util.value)) (t ^ " rows") (Catalog.rows cat t)
            (Catalog.rows cat' t))
        (Catalog.table_names cat);
      (* The oid counter survives (probe-and-store, matching the textual
         format), so reloaded catalogs never hand out stale identifiers. *)
      Alcotest.(check bool) "oid counter preserved" true
        (Catalog.fresh_oid cat' >= 100))

let test_njqc_corrupt () =
  let path = Filename.temp_file "njq-test-bad" ".njqc" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc
            (Rowcodec.njqc_magic ^ "\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff"));
      (match Catalog.load_binary path with
       | _ -> Alcotest.fail "expected Corrupt"
       | exception Rowcodec.Corrupt _ -> ());
      Alcotest.(check bool) "missing file is not njqc" false
        (Rowcodec.is_njqc "njq__no_such_file"))

(* ------------------------------------------------------------------ *)
(* Memory budget parsing *)

let test_parse_budget () =
  let check name exp s =
    Alcotest.(check (option int)) name exp (Memory.parse s)
  in
  check "plain" (Some 4096) "4096";
  check "k suffix" (Some 1024) "1k";
  check "K suffix" (Some 2048) "2K";
  check "m suffix" (Some (3 * 1024 * 1024)) "3m";
  check "trimmed" (Some 7) " 7 ";
  check "zero" None "0";
  check "negative" None "-5";
  check "garbage" None "12q";
  check "empty" None ""

(* ------------------------------------------------------------------ *)
(* Planner: an over-budget hash join becomes a Grace join and spills. *)

let test_planner_converts () =
  let cat = Njq_workload.Generator.xy_catalog ~seed:3 64 in
  let q =
    Expr.Join
      { kind = Expr.Inner; xvar = "x"; yvar = "y";
        pred = eq (var "x" $. "a") (var "y" $. "d"); left = Expr.Table "X";
        right = Expr.Table "Y" }
  in
  let prev = !Memory.budget in
  Fun.protect
    ~finally:(fun () -> Memory.budget := prev)
    (fun () ->
      Memory.budget := 8;
      let plan = Njq_engine.Planner.plan ~cat q in
      let rec has_grace = function
        | Plan.GraceJoin { mem_budget; _ } -> mem_budget = 8
        | p -> List.exists has_grace (Plan.children p)
      in
      Alcotest.(check bool) "hash join became grace" true (has_grace plan);
      Counters.reset ();
      let v = Exec.run cat plan in
      let spill_part = Counters.get "spill_part" in
      let spill_bytes = Counters.get "spill_bytes" in
      Memory.budget := prev;
      let expected = Exec.run cat (Njq_engine.Planner.plan ~cat q) in
      Alcotest.check Util.value "same result as unlimited" expected v;
      Alcotest.(check bool) "spill partitions ticked" true (spill_part > 0);
      Alcotest.(check bool) "spill bytes ticked" true (spill_bytes > 0))

(* ------------------------------------------------------------------ *)
(* Budget differential: Grace, PNHL and sort-merge results are
   bit-identical at every budget, in every executor mode, at 1/2/4
   domains. *)

let with_modes f =
  List.iter
    (fun (pl, ba, name) ->
      let p0 = !Exec.pipeline_exec and b0 = !Exec.batch_exec in
      Exec.pipeline_exec := pl;
      Exec.batch_exec := ba;
      Fun.protect
        ~finally:(fun () ->
          Exec.pipeline_exec := p0;
          Exec.batch_exec := b0)
        (fun () -> f name))
    [ (false, false, "materializing"); (true, false, "pipelined");
      (true, true, "batched") ]

let grace_plan budget =
  Plan.GraceJoin
    { kind = Expr.Inner; xvar = "x"; yvar = "y";
      keys = [ (var "x" $. "a", var "y" $. "d") ]; residual = Expr.true_;
      mem_budget = budget; left = Plan.Scan "X"; right = Plan.Scan "Y" }

let pnhl_plan budget =
  Plan.Pnhl
    { attr = "parts_supplied"; elem_key = var "elem";
      row_key = var "row" $. "oid"; into = "parts_supplied";
      mem_budget = budget; left = Plan.Scan "SUPPLIER";
      right = Plan.Scan "PART" }

let smj_plan =
  Plan.JoinOp
    { algo = Plan.Sort_merge; kind = Expr.Inner; xvar = "x"; yvar = "y";
      keys = [ (var "x" $. "a", var "y" $. "d") ]; residual = Expr.true_;
      left = Plan.Scan "X"; right = Plan.Scan "Y" }

let test_budget_differential () =
  let xy = Njq_workload.Generator.xy_catalog ~seed:77 64 in
  let sp = Njq_workload.Generator.catalog (Njq_workload.Generator.scaled ~seed:5 48) in
  let expected_grace = Exec.run xy (grace_plan max_int) in
  let expected_pnhl = Exec.run sp (pnhl_plan max_int) in
  let expected_smj = Exec.run xy smj_plan in
  Fun.protect
    ~finally:(fun () -> Njq_engine.Pool.set_domains 1)
    (fun () ->
      List.iter
        (fun domains ->
          Njq_engine.Pool.set_domains domains;
          with_modes (fun mode ->
              List.iter
                (fun budget ->
                  Alcotest.check Util.value
                    (Fmt.str "grace %s d%d b%d" mode domains budget)
                    expected_grace
                    (Exec.run xy (grace_plan budget));
                  Alcotest.check Util.value
                    (Fmt.str "pnhl %s d%d b%d" mode domains budget)
                    expected_pnhl
                    (Exec.run sp (pnhl_plan budget)))
                [ max_int; 10; 1 ];
              List.iter
                (fun budget ->
                  let prev = !Memory.budget in
                  Memory.budget := budget;
                  Fun.protect
                    ~finally:(fun () -> Memory.budget := prev)
                    (fun () ->
                      Alcotest.check Util.value
                        (Fmt.str "extsort %s d%d b%d" mode domains budget)
                        expected_smj (Exec.run xy smj_plan)))
                [ max_int; 10; 1 ]))
        [ 1; 2; 4 ])

let test_external_sort_counters () =
  let xy = Njq_workload.Generator.xy_catalog ~seed:77 64 in
  let prev = !Memory.budget in
  Fun.protect
    ~finally:(fun () -> Memory.budget := prev)
    (fun () ->
      Memory.budget := 10;
      Counters.reset ();
      ignore (Exec.run xy smj_plan);
      Alcotest.(check bool) "runs generated" true
        (Counters.get "ext_sort_run" > 0);
      Alcotest.(check bool) "merge ticked" true
        (Counters.get "ext_sort_merge" > 0);
      Alcotest.(check int) "no files left" 0 (Rowcodec.live_spills ()))

let prop_spill_differential =
  Util.qcheck ~count:100 "spilling operators match in-memory"
    Util.arbitrary_xy (fun tables ->
      let cat = Util.xy_catalog tables in
      let expected = Exec.run cat (grace_plan max_int) in
      let smj_expected = Exec.run cat smj_plan in
      List.for_all
        (fun b ->
          Value.equal expected (Exec.run cat (grace_plan b))
          &&
          let prev = !Memory.budget in
          Memory.budget := b;
          Fun.protect
            ~finally:(fun () -> Memory.budget := prev)
            (fun () -> Value.equal smj_expected (Exec.run cat smj_plan)))
        [ 10; 1 ])

let () =
  Alcotest.run "spill"
    [ ( "rowcodec",
        [ Alcotest.test_case "spill file round trip" `Quick
            test_spill_roundtrip;
          Alcotest.test_case "hygiene on exception" `Quick
            test_hygiene_on_exception ] );
      ( "njqc",
        [ Alcotest.test_case "catalog round trip" `Quick test_njqc_roundtrip;
          Alcotest.test_case "corrupt rejected" `Quick test_njqc_corrupt ] );
      ( "budget",
        [ Alcotest.test_case "parse" `Quick test_parse_budget;
          Alcotest.test_case "planner converts over-budget hash join" `Quick
            test_planner_converts;
          Alcotest.test_case "differential across modes and domains" `Quick
            test_budget_differential;
          Alcotest.test_case "external sort counters" `Quick
            test_external_sort_counters ] );
      ( "properties",
        [ prop_rowcodec_roundtrip; prop_spill_differential ] ) ]
