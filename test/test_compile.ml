(* Compiled parameter expressions (Compile) against the reference
   evaluator (Eval): the compiled closure must return the same value — or
   raise — for every environment, including the Table 3 edge cases (empty
   ranges, VNull from outer-join padding) and binder shadowing. *)

open Njq_adl

let eval_outcome f =
  match f () with
  | v -> Ok v
  | exception Eval.Eval_error m -> Error ("eval: " ^ m)
  | exception Value.Type_error m -> Error ("type: " ^ m)

(* Same value, or both failing (reasons may be phrased differently). *)
let outcomes_agree a b =
  match a, b with
  | Ok va, Ok vb -> Value.equal va vb
  | Error _, Error _ -> true
  | _ -> false

let pp_outcome ppf = function
  | Ok v -> Value.pp ppf v
  | Error m -> Fmt.pf ppf "<%s>" m

let check_agree cat env e =
  let vars = List.map fst env in
  let slots = Array.of_list (List.map snd env) in
  let reference = eval_outcome (fun () -> Eval.eval cat env e) in
  let compiled =
    eval_outcome (fun () -> (Compile.expr cat ~vars e) slots)
  in
  if not (outcomes_agree reference compiled) then
    Alcotest.failf "disagreement on %a@.env=%a@.eval:     %a@.compiled: %a"
      Pretty.pp e
      Fmt.(Dump.list (Dump.pair string Value.pp))
      env pp_outcome reference pp_outcome compiled

(* ------------------------------------------------------------------ *)
(* Property: on random XY predicates and tables, the closure compiled for
   the free variable "x" agrees with the reference evaluator on every X
   row (including rows with empty sets — the dangling-tuple shapes). *)

let prop_xy_agreement =
  Util.qcheck ~count:300 "compiled pred agrees with Eval on XY predicates"
    Util.arbitrary_xy_pred_and_tables
    (fun (pred, ((xs, _) as tables)) ->
      let cat = Util.xy_catalog tables in
      let compiled = Compile.expr1 cat ~var:"x" pred in
      List.iter
        (fun x ->
          let reference =
            eval_outcome (fun () -> Eval.eval cat [ ("x", x) ] pred)
          in
          let got = eval_outcome (fun () -> compiled x) in
          if not (outcomes_agree reference got) then
            QCheck.Test.fail_reportf "on %a:@.eval:     %a@.compiled: %a"
              Value.pp x pp_outcome reference pp_outcome got)
        xs;
      true)

(* The engine must produce identical results whether parameters are
   compiled or interpreted: run the same filter plan both ways. *)
let prop_exec_modes_agree =
  Util.qcheck ~count:150 "Exec.run agrees across compile_params modes"
    Util.arbitrary_xy_pred_and_tables
    (fun (pred, tables) ->
      let cat = Util.xy_catalog tables in
      let plan =
        Njq_engine.Plan.Filter
          { var = "x"; pred; input = Njq_engine.Plan.Scan "X" }
      in
      let run () =
        eval_outcome (fun () -> Njq_engine.Exec.run cat plan)
      in
      let compiled = run () in
      let interpreted =
        Njq_engine.Exec.compile_params := false;
        Fun.protect
          ~finally:(fun () -> Njq_engine.Exec.compile_params := true)
          run
      in
      if not (outcomes_agree compiled interpreted) then
        QCheck.Test.fail_reportf "compiled %a <> interpreted %a" pp_outcome
          compiled pp_outcome interpreted;
      true)

(* ------------------------------------------------------------------ *)
(* Corpus: every paper query (and the extended ones) compiled as a closed
   expression returns exactly Eval.run's result. *)

let corpus_agree () =
  let cfg =
    { Njq_workload.Generator.default_config with
      parts = 24;
      suppliers = 12;
      deliveries = 12;
      dangling_rate = 0.0
    }
  in
  let cat = Njq_workload.Generator.catalog cfg in
  List.iter
    (fun (q : Njq_workload.Queries.query) ->
      let e = Njq_workload.Queries.to_adl q in
      let reference = Eval.run cat e in
      let compiled = (Compile.expr cat ~vars:[] e) [||] in
      Alcotest.check Util.value q.id reference compiled)
    (Njq_workload.Queries.all @ Njq_workload.Queries.extended)

(* ------------------------------------------------------------------ *)
(* Table 3: quantifiers over the empty set — ∀ is vacuously true, ∃ is
   false — and comparisons against VNull padding. *)

let empty_and_null () =
  let cat = Catalog.create () in
  let open Dsl in
  let null = Expr.Const Value.VNull in
  let cases =
    [ forall "z" empty (eq (var "z") (int 1));
      exists "z" empty (eq (var "z") (int 1));
      set_eq empty empty;
      mem (int 1) empty;
      count empty;
      (* null comparisons behave identically in both layers *)
      eq null (int 1);
      eq null null;
      Expr.Cmp (Expr.Lt, null, int 3);
      Expr.If (eq null null, int 1, int 2) ]
  in
  List.iter (fun e -> check_agree cat [] e) cases;
  (* P(x, ∅): the quantifier range comes from a variable bound to ∅. *)
  let x_empty = Value.tuple [ ("c", Value.empty_set) ] in
  List.iter
    (fun e -> check_agree cat [ ("x", x_empty) ] e)
    [ forall "z" (var "x" $. "c") (eq (var "z") (int 1));
      exists "z" (var "x" $. "c") (eq (var "z") (int 1)) ]

(* ------------------------------------------------------------------ *)
(* Shadowing: inner binders reuse an outer variable's name.  The slot
   environment must resolve each reference to the innermost binding, like
   the assoc environment's leftmost cons. *)

let shadowing () =
  let open Dsl in
  let cat = Catalog.create () in
  let row = Value.tuple [ ("a", Value.int 1); ("c", Value.set [ Value.int 2 ]) ] in
  (* inner x (an int element) shadows outer x (the row) in the body *)
  check_agree cat
    [ ("x", row) ]
    (exists "x" (var "x" $. "c") (eq (var "x") (int 2)));
  check_agree cat
    [ ("x", row) ]
    (map_ "x" (var "x" $. "c") (add (var "x") (int 1)));
  (* Join with xvar = yvar: the left binder wins in the predicate. *)
  let xs = Expr.SetLit [ tuple [ ("a", int 1) ]; tuple [ ("a", int 2) ] ] in
  let ys = Expr.SetLit [ tuple [ ("b", int 1) ]; tuple [ ("b", int 2) ] ] in
  check_agree cat []
    (Expr.Join
       { kind = Expr.Semi;
         xvar = "v";
         yvar = "v";
         pred = eq (var "v" $. "a") (int 1);
         left = xs;
         right = ys
       });
  (* expr2 with colliding names: the first variable shadows the second. *)
  let f =
    Compile.expr2 cat ~vars:("v", "v") (Dsl.var "v")
  in
  Alcotest.check Util.value "expr2 shadow" (Value.int 1)
    (f (Value.int 1) (Value.int 99))

let unbound () =
  let cat = Catalog.create () in
  let f = Compile.expr cat ~vars:[ "x" ] (Dsl.var "nope") in
  Alcotest.check_raises "unbound variable raises at run time"
    (Eval.Eval_error "unbound variable nope") (fun () ->
      ignore (f [| Value.int 0 |]))

(* Compiled closures must not pay the interpreter's per-tuple accounting:
   running one ticks no "nl_pred_eval"/"nl_tuple_visit". *)
let no_interpreter_ticks () =
  let cat = Util.small_catalog () in
  let open Dsl in
  let e =
    exists "p" (table "PART") (eq (var "p" $. "price") (var "x" $. "price"))
  in
  let f = Compile.expr1 cat ~var:"x" e in
  let row = Value.tuple [ ("price", Value.int 10) ] in
  let _, counts = Counters.measure (fun () -> f row) in
  let count name = try List.assoc name counts with Not_found -> 0 in
  Alcotest.(check int) "nl_pred_eval" 0 (count "nl_pred_eval");
  Alcotest.(check int) "nl_tuple_visit" 0 (count "nl_tuple_visit")

(* Closed subexpressions fold to constants, but a folded failure must not
   escape until the expression is actually forced (short-circuit). *)
let deferred_failure () =
  let cat = Catalog.create () in
  let open Dsl in
  let boom = Expr.Field (int 1, "a") in
  (* (false && boom) never forces boom *)
  check_agree cat [] (Expr.And (bool false, boom));
  check_agree cat [] (Expr.Or (bool true, boom));
  check_agree cat [] (Expr.If (bool false, boom, int 7));
  (* forcing it fails in both layers *)
  check_agree cat [] (Expr.And (bool true, boom))

let () =
  Alcotest.run "compile"
    [ ( "agreement",
        [ prop_xy_agreement;
          prop_exec_modes_agree;
          Alcotest.test_case "paper corpus" `Quick corpus_agree ] );
      ( "edge cases",
        [ Alcotest.test_case "empty set and null (Table 3)" `Quick
            empty_and_null;
          Alcotest.test_case "binder shadowing" `Quick shadowing;
          Alcotest.test_case "unbound variable" `Quick unbound;
          Alcotest.test_case "no interpreter ticks" `Quick no_interpreter_ticks;
          Alcotest.test_case "deferred constant-fold failure" `Quick
            deferred_failure ] ) ]
