(* Tests for the serving layer (DESIGN.md section 12).

   The contract under test: a prepared template executed as a K-way
   set-oriented batch ([Serve.exec_batch]) returns, per invocation, a
   result bit-identical to running that invocation alone
   ([Serve.exec_one]) — for K in {1,4,16,64}, under every executor mode
   and at 1/2/4 pool domains — and the in-process concurrent driver
   routes every client's replies correctly.  Alongside: the plan cache's
   auto-parameterization (constant-differing queries share one plan, with
   the date-literal and index guards), epoch invalidation when the
   catalog changes under a configured pool, and the query log's
   flush-on-exit hook.

   The qlog fork test must run before anything spawns domains (the pool,
   the serve driver): forking a process that owns live domains would
   leave the child's at_exit pool shutdown joining threads that do not
   exist in the child.  It is therefore the first suite. *)

open Njq_adl
module Serve = Njq_engine.Serve
module Plancache = Njq_engine.Plancache
module Planner = Njq_engine.Planner
module Exec = Njq_engine.Exec
module Pool = Njq_engine.Pool
module Strategy = Njq_core.Strategy
module Qlog = Njq_obs.Qlog

let translate text =
  fst (Njq_oosql.Translate.query_string Njq_workload.Queries.schema text)

let with_exec ~pipeline ~batch f =
  let prev_p = !Exec.pipeline_exec and prev_b = !Exec.batch_exec in
  Exec.pipeline_exec := pipeline;
  Exec.batch_exec := batch;
  Fun.protect
    ~finally:(fun () ->
      Exec.pipeline_exec := prev_p;
      Exec.batch_exec := prev_b)
    f

let with_domains k f =
  let prev = Pool.domains () in
  Pool.set_domains k;
  Fun.protect ~finally:(fun () -> Pool.set_domains prev) f

(* The three executor modes (materializing, row pipelined, batched). *)
let modes =
  [ ("mat", false, false); ("row", true, false); ("batch", true, true) ]

(* ------------------------------------------------------------------ *)
(* Qlog flush-on-exit (must stay first: forks before domains exist)    *)
(* ------------------------------------------------------------------ *)

let sample_event =
  { Qlog.ts_ns = 1;
    query_hash = Qlog.hash_hex "select p from p in PART";
    fingerprint = "feedfacefeedface";
    cache = "hit";
    rows = 3;
    work = [ ("scan_row", 4) ];
    work_total = 4;
    minor_words = 0.0;
    major_words = 0.0;
    wall_ns = 1000;
    cpu_ns = 900;
    queue_ns = 250;
    batch = 4;
    max_qerror = 1.0;
    spilled = 0;
    slow = false }

let test_qlog_flush_on_exit () =
  let path = Filename.temp_file "njq_serve_qlog" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      match Unix.fork () with
      | 0 ->
        (* Child: log without ever calling [close], then exit normally.
           The sink's at_exit hook must flush the buffered line.  Stdio
           goes to /dev/null so the child's exit stays silent. *)
        let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
        Unix.dup2 devnull Unix.stdout;
        Unix.dup2 devnull Unix.stderr;
        let sink = Qlog.open_sink path in
        Qlog.log sink sample_event;
        exit 0
      | pid ->
        let _, status = Unix.waitpid [] pid in
        Alcotest.(check bool) "child exited cleanly" true
          (status = Unix.WEXITED 0);
        let events, bad = Qlog.read_file path in
        Alcotest.(check int) "no malformed lines" 0 bad;
        (match events with
         | [ e ] ->
           Alcotest.(check string)
             "event survived the exit" sample_event.Qlog.fingerprint
             e.Qlog.fingerprint;
           Alcotest.(check int) "batch field round-trips" 4 e.Qlog.batch;
           Alcotest.(check int) "queue_ns field round-trips" 250
             e.Qlog.queue_ns
         | es ->
           Alcotest.failf "expected exactly one flushed event, got %d"
             (List.length es)))

(* ------------------------------------------------------------------ *)
(* Batched vs one-at-a-time differential                               *)
(* ------------------------------------------------------------------ *)

(* Templates over the fixture catalog; parameters picked so results vary
   per invocation (prices span 5..50). *)
let t_price = "select p.pname from p in PART where p.price < ?0"

let t_range =
  "select p.pname from p in PART where p.price >= ?0 and p.price <= ?1"

let t_noparam = "select s.sname from s in SUPPLIER"

let price_params i = [ Value.int (i * 7 mod 60) ]
let range_params i = [ Value.int (i * 3 mod 30); Value.int (20 + (i * 11 mod 40)) ]

let test_differential () =
  List.iter
    (fun domains ->
      with_domains domains (fun () ->
          let cat = Util.small_catalog () in
          Plancache.clear ();
          let h_price = Serve.prepare cat ~translate t_price in
          let h_range = Serve.prepare cat ~translate t_range in
          let h_none = Serve.prepare cat ~translate t_noparam in
          Alcotest.(check int) "t_price arity" 1 (Serve.nparams h_price);
          Alcotest.(check int) "t_range arity" 2 (Serve.nparams h_range);
          Alcotest.(check int) "t_noparam arity" 0 (Serve.nparams h_none);
          List.iter
            (fun (mode, pipeline, batch) ->
              with_exec ~pipeline ~batch (fun () ->
                  List.iter
                    (fun k ->
                      let check name h mk =
                        let vectors = List.init k mk in
                        let batched = Serve.exec_batch h vectors in
                        let singles =
                          List.map (fun ps -> fst (Serve.exec_one h ps)) vectors
                        in
                        List.iteri
                          (fun i (b, s) ->
                            Alcotest.check Util.value
                              (Printf.sprintf
                                 "%s [%s, %d domains] K=%d cid=%d" name mode
                                 domains k i)
                              s b)
                          (List.combine batched singles)
                      in
                      check "price" h_price price_params;
                      check "range" h_range range_params;
                      check "noparam" h_none (fun _ -> []))
                    [ 1; 4; 16; 64 ]))
            modes))
    [ 1; 2; 4 ]

(* Arity mismatches must fail fast, not execute. *)
let test_arity_check () =
  let cat = Util.small_catalog () in
  Plancache.clear ();
  let h = Serve.prepare cat ~translate t_price in
  Alcotest.check_raises "too many parameters"
    (Invalid_argument
       (Printf.sprintf "Serve: 2 parameters given, template %s takes 1"
          (Serve.text h)))
    (fun () -> ignore (Serve.exec_one h [ Value.int 1; Value.int 2 ]))

(* ------------------------------------------------------------------ *)
(* Concurrent driver                                                   *)
(* ------------------------------------------------------------------ *)

let test_driver_routes_replies () =
  let cat = Util.small_catalog () in
  Plancache.clear ();
  let h_price = Serve.prepare cat ~translate t_price in
  let h_range = Serve.prepare cat ~translate t_range in
  let pick ~client ~seq =
    let i = (client * 17) + seq in
    if i mod 2 = 0 then (h_price, price_params i) else (h_range, range_params i)
  in
  List.iter
    (fun (batching, clients, requests, burst) ->
      let replies =
        Serve.run ~batching ~window:8 ~burst ~clients ~requests ~params:pick ()
      in
      Alcotest.(check int)
        (Printf.sprintf "all replies arrive (batching=%b)" batching)
        (clients * requests) (List.length replies);
      List.iter
        (fun (r : Serve.reply) ->
          let h, ps = pick ~client:r.client ~seq:r.seq in
          let expect = fst (Serve.exec_one h ps) in
          Alcotest.check Util.value
            (Printf.sprintf "client %d seq %d (batching=%b)" r.client r.seq
               batching)
            expect r.value;
          Alcotest.(check bool) "batch size sane" true
            (r.batch >= 1 && r.batch <= 8);
          if not batching then
            Alcotest.(check int) "unbatched service is singleton" 1 r.batch;
          Alcotest.(check bool) "non-negative waits" true
            (r.queue_ns >= 0 && r.service_ns >= 0))
        replies)
    [ (true, 4, 6, 2); (false, 3, 4, 1) ]

(* ------------------------------------------------------------------ *)
(* Plan-cache epoch invalidation under a configured pool               *)
(* ------------------------------------------------------------------ *)

let pnames vs = Value.set (List.map Value.string vs)

let test_epoch_invalidation_under_pool () =
  List.iter
    (fun domains ->
      with_domains domains (fun () ->
          let cat = Util.small_catalog () in
          Plancache.clear ();
          let h = Serve.prepare cat ~translate t_price in
          let run_k k =
            Serve.exec_batch h (List.init k (fun i -> [ Value.int (8 + i) ]))
          in
          (match run_k 3 with
           | [ v; _; _ ] ->
             Alcotest.check Util.value
               (Printf.sprintf "initial rows at %d domains" domains)
               (pnames [ "nut" ]) v
           | _ -> Alcotest.fail "expected 3 results");
          let m0 = Plancache.misses () in
          ignore (run_k 3);
          Alcotest.(check int)
            (Printf.sprintf "stable catalog serves from cache at %d domains"
               domains)
            0
            (Plancache.misses () - m0);
          (* Mutate a base table from inside the pool: the epoch bump must
             be visible to the serving path after the join, re-deriving
             both the one-at-a-time and batched plans. *)
          let new_rows =
            [ Util.part ~oid:7 ~pname:"axle" ~price:3 ~color:"red";
              Util.part ~oid:8 ~pname:"gear" ~price:40 ~color:"blue" ]
          in
          ignore
            (Pool.run (max 2 domains) (fun i ->
                 if i = 0 then Catalog.set_rows cat "PART" new_rows));
          (match run_k 3 with
           | [ v; _; _ ] ->
             Alcotest.check Util.value
               (Printf.sprintf "post-update rows at %d domains" domains)
               (pnames [ "axle" ]) v
           | _ -> Alcotest.fail "expected 3 results");
          Alcotest.(check bool)
            (Printf.sprintf "epoch bump re-derived at %d domains" domains)
            true
            (Plancache.misses () - m0 > 0)))
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Plan-cache auto-parameterization                                    *)
(* ------------------------------------------------------------------ *)

let derive_for cat count text =
  incr count;
  Planner.plan ~cat (Strategy.optimize cat (translate text))

let test_autoparam_shares_plans () =
  let cat = Util.small_catalog () in
  Plancache.clear ();
  let derived = ref 0 in
  let h0 = Plancache.hits () in
  let run q =
    Exec.run cat (Plancache.find_or_derive cat q ~derive:(derive_for cat derived))
  in
  let v20 = run "select p.pname from p in PART where p.price < 20" in
  let v7 = run "select p.pname from p in PART where p.price < 7" in
  Alcotest.(check int) "constant-differing queries derive once" 1 !derived;
  Alcotest.(check int) "second query is a cache hit" 1 (Plancache.hits () - h0);
  (* The template hit must still bind each call's own constant. *)
  Alcotest.check Util.value "threshold 20" (pnames [ "bolt"; "nut" ]) v20;
  Alcotest.check Util.value "threshold 7" (pnames [ "nut" ]) v7

let test_autoparam_guards () =
  (* Date-shaped integer literals stay in the text (translation-time
     coercion needs them); other numerics extract. *)
  let check_id text =
    let t, cs = Plancache.parameterize text in
    Alcotest.(check string) ("unchanged: " ^ text) text t;
    Alcotest.(check int) ("no constants: " ^ text) 0 (List.length cs)
  in
  check_id "select d from d in DELIVERY where d.date = 940101";
  check_id "x = 19940101";
  check_id "name = \"has 5 inside\"";
  check_id "select q1.a from q1 in T2";
  let t, cs = Plancache.parameterize "price < 25 and price > 2.5" in
  Alcotest.(check string) "numerics extract" "price < ?0 and price > ?1" t;
  Alcotest.(check bool) "extracted values" true
    (cs = [ Value.int 25; Value.float 2.5 ]);
  (* Indexed catalogs keep literals so sargable planning sees them. *)
  let cat = Util.small_catalog () in
  Plancache.clear ();
  ignore
    (Catalog.create_index cat ~name:"part_price" ~table:"PART"
       ~attrs:[ "price" ] ~kind:Catalog.Hash_index ());
  let derived = ref 0 in
  let run q =
    ignore (Plancache.find_or_derive cat q ~derive:(derive_for cat derived))
  in
  run "select p.pname from p in PART where p.price < 20";
  run "select p.pname from p in PART where p.price < 7";
  Alcotest.(check int) "indexed catalog derives per constant" 2 !derived

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "serve"
    [ ( "qlog",
        [ Alcotest.test_case "flush on exit" `Quick test_qlog_flush_on_exit ] );
      ( "differential",
        [ Alcotest.test_case "batched = one-at-a-time (K x modes x domains)"
            `Quick test_differential;
          Alcotest.test_case "arity check" `Quick test_arity_check ] );
      ( "driver",
        [ Alcotest.test_case "routes per-client replies" `Quick
            test_driver_routes_replies ] );
      ( "invalidation",
        [ Alcotest.test_case "epoch bump under pool at 1/2/4 domains" `Quick
            test_epoch_invalidation_under_pool ] );
      ( "autoparam",
        [ Alcotest.test_case "constant-differing queries share a plan" `Quick
            test_autoparam_shares_plans;
          Alcotest.test_case "date/index/string guards" `Quick
            test_autoparam_guards ] ) ]
