(* Properties of the observability histograms and the query log: exact
   shard merging, percentile error bounds, allocation-free recording,
   both codecs, sharded [Metrics.observe] through the real domain pool,
   and the qlog event/sink/aggregate pipeline. *)

module H = Njq_obs.Histogram
module M = Njq_obs.Metrics
module Qlog = Njq_obs.Qlog
module Json = Njq_obs.Json
module Pool = Njq_engine.Pool

(* Values spanning the unit buckets, the log-bucketed octaves, and the
   large tail — the shapes latency samples actually take. *)
let value_gen =
  QCheck.Gen.(
    oneof
      [ int_bound 255;
        map (fun i -> 256 + i) (int_bound 100_000);
        map (fun i -> 1_000_000 + i) (int_bound 2_000_000_000) ])

let arbitrary_values =
  QCheck.make
    ~print:QCheck.Print.(list int)
    QCheck.Gen.(list_size (int_range 1 200) value_gen)

let arbitrary_shards =
  QCheck.make
    ~print:QCheck.Print.(list (list int))
    QCheck.Gen.(list_size (int_range 1 8) (list_size (int_range 0 60) value_gen))

let of_values vs =
  let h = H.create () in
  List.iter (H.record h) vs;
  h

(* Merging per-shard histograms is lossless: bucket for bucket equal to
   one histogram over the concatenated samples — the invariant that makes
   per-domain shards and [njq top]'s per-plan folds exact. *)
let prop_merge_of_shards =
  Util.qcheck ~count:300 "merge of shards = histogram of concatenation"
    arbitrary_shards
    (fun shards ->
      let merged = H.create () in
      List.iter
        (fun vs -> H.merge_into ~into:merged (of_values vs))
        shards;
      H.equal merged (of_values (List.concat shards)))

(* [percentile] never undershoots the true order statistic and overshoots
   by at most the holding bucket's width. *)
let prop_percentile_bound =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"percentile within one bucket width"
       (QCheck.pair arbitrary_values (QCheck.float_range 0.0 1.0))
       (fun (vs, q) ->
         let h = of_values vs in
         let sorted = List.sort compare vs in
         let n = List.length vs in
         (* same rank formula as the implementation *)
         let rank =
           let r = int_of_float (ceil (q *. float_of_int n)) in
           if r < 1 then 1 else if r > n then n else r
         in
         let exact = List.nth sorted (rank - 1) in
         let p = H.percentile h q in
         let _, hi = H.bucket_range exact in
         exact <= p && p <= hi))

(* Min/max are exact, count/sum are exact. *)
let prop_aggregates_exact =
  Util.qcheck ~count:300 "count/sum/min/max are exact" arbitrary_values
    (fun vs ->
      let h = of_values vs in
      H.count h = List.length vs
      && H.sum h = List.fold_left ( + ) 0 vs
      && H.min_value h = List.fold_left min max_int vs
      && H.max_value h = List.fold_left max (-1) vs)

let prop_json_roundtrip =
  Util.qcheck ~count:200 "JSON codec round-trips bucket-exactly"
    arbitrary_values
    (fun vs ->
      let h = of_values vs in
      match H.of_json (Json.of_string (Json.to_string (H.to_json h))) with
      | Some h' -> H.equal h h'
      | None -> false)

let prop_binary_roundtrip =
  Util.qcheck ~count:200 "binary codec round-trips bucket-exactly"
    arbitrary_values
    (fun vs ->
      let h = of_values vs in
      match H.decode (H.encode h) with
      | Some h' -> H.equal h h'
      | None -> false)

let test_decode_garbage () =
  Alcotest.(check bool) "empty" true (H.decode "" = None);
  Alcotest.(check bool) "bad magic" true (H.decode "XXXX1\x00" = None);
  let h = of_values [ 1; 500; 70_000 ] in
  let enc = H.encode h in
  let truncated = String.sub enc 0 (String.length enc - 1) in
  Alcotest.(check bool) "truncated" true (H.decode truncated = None)

(* Recording must not allocate: it runs per query and per parallel task.
   [Gc.counters] flushes the young pointer, so a zero minor delta is a
   real measurement, not a stale one. *)
let test_record_allocation_free () =
  let h = H.create () in
  (* warm up: first records touch every code path *)
  for i = 0 to 999 do
    H.record h (i * 37)
  done;
  let min0, _, _ = Gc.counters () in
  for i = 0 to 9_999 do
    H.record h (i * 53)
  done;
  let min1, _, _ = Gc.counters () in
  let delta = min1 -. min0 in
  (* the [Gc.counters] probe itself costs a few words; recording must
     stay O(1) total, nowhere near the >=2 words/record a boxing bug
     would cost (20k+ words here) *)
  if delta > 64.0 then
    Alcotest.failf "recording allocated %.0f minor words over 10k records"
      delta

(* Sharded observation through the real pool: N domains each observing a
   disjoint slice must merge into exactly the sequential histogram. *)
let test_sharded_observe_exact () =
  M.reset ();
  let h = M.histogram "test_shard_hist" in
  let slices =
    List.init 4 (fun s -> List.init 50 (fun i -> (s * 1000) + (i * 17)))
  in
  Pool.set_domains 3;
  ignore (Pool.run 4 (fun s -> List.iter (M.observe h) (List.nth slices s)));
  Pool.set_domains (Pool.default_domains ());
  let expected = of_values (List.concat slices) in
  Alcotest.(check bool)
    "pool-sharded observe = sequential" true
    (H.equal expected (M.hist_value h));
  M.reset ()

(* Parallel-section counter deltas attributed per domain sum to the
   sharded contribution that reached the main cells. *)
let test_domain_attribution_sums () =
  M.reset ();
  let c = M.counter "test_domain_attr" in
  Pool.set_domains 3;
  ignore (Pool.run 4 (fun s -> M.incr ~n:(s + 1) c));
  Pool.set_domains (Pool.default_domains ());
  Alcotest.(check int) "main total" 10 (M.value c);
  let by_domain = M.counter_snapshot_by_domain () in
  let attributed =
    List.fold_left
      (fun acc (_, cs) ->
        List.fold_left
          (fun acc (name, n) ->
            if String.equal name "test_domain_attr" then acc + n else acc)
          acc cs)
      0 by_domain
  in
  Alcotest.(check int) "attributed = sharded total" 10 attributed;
  M.reset ()

(* ---------------- query log ---------------- *)

let sample_event ?(fp = "deadbeefdeadbeef") ?(wall_ns = 5_000_000)
    ?(cache = "miss") () =
  {
    Qlog.ts_ns = 123_456_789;
    query_hash = Qlog.hash_hex "select s from s in S";
    fingerprint = fp;
    cache;
    rows = 42;
    work = [ ("eval_steps", 100); ("hash_probes", 7) ];
    work_total = 107;
    minor_words = 512.0;
    major_words = 0.0;
    wall_ns;
    cpu_ns = 4_900_000;
    queue_ns = 0;
    batch = 1;
    max_qerror = 1.5;
    spilled = 4096;
    slow = false;
  }

let test_event_json_roundtrip () =
  let e = sample_event () in
  match Qlog.of_json (Json.of_string (Json.to_string (Qlog.to_json e))) with
  | None -> Alcotest.fail "event did not round-trip"
  | Some e' ->
    Alcotest.(check string) "query_hash" e.Qlog.query_hash e'.Qlog.query_hash;
    Alcotest.(check string) "fingerprint" e.Qlog.fingerprint e'.Qlog.fingerprint;
    Alcotest.(check string) "cache" e.Qlog.cache e'.Qlog.cache;
    Alcotest.(check int) "rows" e.Qlog.rows e'.Qlog.rows;
    Alcotest.(check int) "wall_ns" e.Qlog.wall_ns e'.Qlog.wall_ns;
    Alcotest.(check int) "work_total" e.Qlog.work_total e'.Qlog.work_total;
    Alcotest.(check bool) "work" true (e.Qlog.work = e'.Qlog.work);
    Alcotest.(check (float 0.0)) "qerror" e.Qlog.max_qerror e'.Qlog.max_qerror

let test_hash_hex_stable () =
  (* pinned: the fingerprint join key must never drift across versions *)
  Alcotest.(check string) "fnv1a of empty" "cbf29ce484222325"
    (Qlog.hash_hex "");
  Alcotest.(check string) "fnv1a of abc" "e71fa2190541574b"
    (Qlog.hash_hex "abc");
  Alcotest.(check int) "16 hex digits" 16
    (String.length (Qlog.hash_hex "anything"))

let with_tmp f =
  let path = Filename.temp_file "njq_qlog" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let test_sink_slow_filter () =
  with_tmp (fun path ->
      let sink = Qlog.open_sink ~slow_ms:1.0 path in
      Qlog.log sink (sample_event ~wall_ns:5_000_000 ());
      (* 5ms: kept *)
      Qlog.log sink (sample_event ~wall_ns:10_000 ());
      (* 0.01ms: dropped *)
      Alcotest.(check int) "written" 1 (Qlog.written sink);
      Alcotest.(check int) "dropped" 1 (Qlog.dropped sink);
      Qlog.close sink;
      let events, bad = Qlog.read_file path in
      Alcotest.(check int) "no malformed lines" 0 bad;
      match events with
      | [ e ] ->
        Alcotest.(check bool) "slow stamped" true e.Qlog.slow;
        Alcotest.(check int) "the 5ms event" 5_000_000 e.Qlog.wall_ns
      | es -> Alcotest.failf "expected 1 event, read %d" (List.length es))

let test_read_file_skips_malformed () =
  with_tmp (fun path ->
      let sink = Qlog.open_sink path in
      Qlog.log sink (sample_event ());
      Qlog.close sink;
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "{not json\n{\"ts_ns\": 1}\n";
      close_out oc;
      let events, bad = Qlog.read_file path in
      Alcotest.(check int) "one good event" 1 (List.length events);
      Alcotest.(check int) "two bad lines" 2 bad)

let test_aggregate () =
  let events =
    [ sample_event ~fp:"aaaaaaaaaaaaaaaa" ~wall_ns:1_000_000 ~cache:"miss" ();
      sample_event ~fp:"aaaaaaaaaaaaaaaa" ~wall_ns:3_000_000 ~cache:"hit" ();
      sample_event ~fp:"bbbbbbbbbbbbbbbb" ~wall_ns:9_000_000 ~cache:"hit" ()
    ]
  in
  match Qlog.aggregate events with
  | [ first; second ] ->
    (* sorted by total wall time descending: b (9ms) before a (4ms) *)
    Alcotest.(check string) "heaviest first" "bbbbbbbbbbbbbbbb"
      first.Qlog.a_fingerprint;
    Alcotest.(check int) "b calls" 1 first.Qlog.a_calls;
    Alcotest.(check string) "then a" "aaaaaaaaaaaaaaaa"
      second.Qlog.a_fingerprint;
    Alcotest.(check int) "a calls" 2 second.Qlog.a_calls;
    Alcotest.(check int) "a hits" 1 second.Qlog.a_hits;
    Alcotest.(check (float 1e-9)) "a hit rate" 0.5 (Qlog.hit_rate second);
    Alcotest.(check int) "a wall total" 4_000_000 second.Qlog.a_wall_total;
    Alcotest.(check int) "a work" 214 second.Qlog.a_work;
    Alcotest.(check int) "a p-max" 3_000_000
      (H.max_value second.Qlog.a_wall)
  | aggs -> Alcotest.failf "expected 2 agg rows, got %d" (List.length aggs)

let () =
  Alcotest.run "histogram"
    [ ( "histogram",
        [ prop_merge_of_shards; prop_percentile_bound; prop_aggregates_exact;
          prop_json_roundtrip; prop_binary_roundtrip;
          Alcotest.test_case "decode rejects garbage" `Quick
            test_decode_garbage;
          Alcotest.test_case "recording is allocation-free" `Quick
            test_record_allocation_free ] );
      ( "metrics",
        [ Alcotest.test_case "pool-sharded observe is exact" `Quick
            test_sharded_observe_exact;
          Alcotest.test_case "per-domain attribution sums" `Quick
            test_domain_attribution_sums ] );
      ( "qlog",
        [ Alcotest.test_case "event JSON round trip" `Quick
            test_event_json_roundtrip;
          Alcotest.test_case "hash_hex pinned" `Quick test_hash_hex_stable;
          Alcotest.test_case "sink slow threshold" `Quick
            test_sink_slow_filter;
          Alcotest.test_case "read_file skips malformed" `Quick
            test_read_file_skips_malformed;
          Alcotest.test_case "aggregate per fingerprint" `Quick
            test_aggregate ] ) ]
