(* Tests for the observability layer: span nesting and ordering, exporter
   JSON well-formedness, the Counters facade over the metrics registry
   (with a micro-check that interned handles beat string ticks), q-error
   math, and — the load-bearing property — that the non-perturbing
   per-operator profile reports exactly the same per-node row counts as the
   materializing [Instrument] oracle on the paper's query workload. *)

open Njq_adl
open Dsl
module Clock = Njq_obs.Clock
module Json = Njq_obs.Json
module Metrics = Njq_obs.Metrics
module Span = Njq_obs.Span
module Export = Njq_obs.Export
module Planner = Njq_engine.Planner
module Exec = Njq_engine.Exec
module Profile = Njq_engine.Profile
module Instrument = Njq_engine.Instrument

(* ---------------- JSON reader/writer ---------------- *)

let sample_doc =
  Json.Obj
    [ ("null", Json.Null);
      ("flag", Json.Bool true);
      ("count", Json.Int 42);
      ("ratio", Json.Float 1.5);
      ("text", Json.Str "a \"quoted\"\nline\twith\\escapes");
      ("items", Json.List [ Json.Int 1; Json.Int (-2); Json.Float 0.25 ]);
      ("nested", Json.Obj [ ("empty_list", Json.List []); ("empty_obj", Json.Obj []) ])
    ]

let test_json_roundtrip () =
  List.iter
    (fun pretty ->
      let s = Json.to_string ~pretty sample_doc in
      Alcotest.(check bool)
        (Printf.sprintf "round-trip (pretty=%b)" pretty)
        true
        (Json.equal sample_doc (Json.of_string s)))
    [ false; true ]

let test_json_parse_units () =
  Alcotest.(check bool) "int stays int" true
    (Json.of_string "17" = Json.Int 17);
  Alcotest.(check bool) "float stays float" true
    (Json.of_string "1.5e2" = Json.Float 150.0);
  Alcotest.(check bool) "escape decoding" true
    (Json.of_string {|"aA\n"|} = Json.Str "aA\n");
  Alcotest.(check bool) "garbage rejected" true
    (Json.of_string_opt "{broken" = None);
  Alcotest.(check bool) "trailing rejected" true
    (Json.of_string_opt "1 2" = None);
  Alcotest.(check bool) "member lookup" true
    (Json.member "count" sample_doc = Some (Json.Int 42));
  Alcotest.(check bool) "member on non-obj" true
    (Json.member "x" (Json.Int 1) = None)

(* ---------------- spans ---------------- *)

let test_span_nesting () =
  let (), spans =
    Span.trace (fun () ->
        Span.with_span "root" (fun () ->
            Span.with_span "child1" (fun () -> ignore (Sys.opaque_identity 1));
            Span.with_span "child2" (fun () ->
                Span.emit ~start_ns:(Clock.now_ns ()) "leaf")))
  in
  let names = List.map (fun (s : Span.span) -> s.name) spans in
  Alcotest.(check (list string))
    "start order" [ "root"; "child1"; "child2"; "leaf" ] names;
  let by_name n = List.find (fun (s : Span.span) -> s.name = n) spans in
  let root = by_name "root" in
  let child1 = by_name "child1" in
  let child2 = by_name "child2" in
  let leaf = by_name "leaf" in
  Alcotest.(check int) "root depth" 0 root.depth;
  Alcotest.(check bool) "root is a root" true (root.parent = None);
  Alcotest.(check bool) "child1 parent" true (child1.parent = Some root.id);
  Alcotest.(check bool) "child2 parent" true (child2.parent = Some root.id);
  Alcotest.(check bool) "leaf parent" true (leaf.parent = Some child2.id);
  Alcotest.(check int) "leaf depth" 2 leaf.depth;
  List.iter
    (fun (s : Span.span) ->
      Alcotest.(check bool) (s.name ^ " closed") true (s.stop_ns >= s.start_ns))
    spans;
  Alcotest.(check bool) "children inside root" true
    (child1.stop_ns <= root.stop_ns && child2.start_ns >= root.start_ns)

let test_span_disabled_is_noop () =
  Span.reset ();
  Span.stop_tracing ();
  Span.with_span "ignored" (fun () -> ());
  Span.emit ~start_ns:0 "also ignored";
  Alcotest.(check int) "nothing collected" 0 (List.length (Span.finished ()))

(* Tracing a real pipeline run: the rewrite span encloses its phases. *)
let test_pipeline_spans () =
  let cat = Util.small_catalog () in
  let q = Njq_workload.Queries.find "EQ5" in
  let adl = Njq_workload.Queries.to_adl q in
  let _, spans =
    Span.trace (fun () -> Njq_core.Strategy.optimize cat adl)
  in
  let by_name n = List.find_opt (fun (s : Span.span) -> s.name = n) spans in
  let rewrite =
    match by_name "rewrite" with
    | Some s -> s
    | None -> Alcotest.fail "no rewrite span"
  in
  let phases =
    List.filter
      (fun (s : Span.span) ->
        String.length s.name > 6 && String.sub s.name 0 6 = "phase:")
      spans
  in
  Alcotest.(check bool) "has phase spans" true (phases <> []);
  List.iter
    (fun (s : Span.span) ->
      Alcotest.(check bool) (s.name ^ " under rewrite") true
        (s.parent = Some rewrite.id))
    phases;
  (* EQ5 rewrites to a semijoin, so at least one rule fired. *)
  Alcotest.(check bool) "has rule spans" true
    (List.exists
       (fun (s : Span.span) ->
         String.length s.name > 5 && String.sub s.name 0 5 = "rule:")
       spans)

(* ---------------- exporters ---------------- *)

let traced_spans () =
  let cat = Util.small_catalog () in
  let adl = Njq_workload.Queries.to_adl (Njq_workload.Queries.find "EQ5") in
  let _, spans =
    Span.trace (fun () ->
        let e = Njq_core.Strategy.optimize cat adl in
        fst (Exec.collect (fun () -> Planner.run cat e)))
  in
  spans

let test_export_json_wellformed () =
  let spans = traced_spans () in
  Alcotest.(check bool) "has operator spans" true
    (List.exists
       (fun (s : Span.span) ->
         String.length s.name > 3 && String.sub s.name 0 3 = "op:")
       spans);
  let doc = Export.spans_to_json spans in
  Alcotest.(check bool) "spans JSON round-trips" true
    (Json.equal doc (Json.of_string (Json.to_string ~pretty:true doc)))

let test_chrome_trace_wellformed () =
  let spans = traced_spans () in
  let doc = Export.chrome_trace spans in
  let parsed = Json.of_string (Json.to_string doc) in
  match Json.member "traceEvents" parsed with
  | Some (Json.List events) ->
    Alcotest.(check int) "one event per span" (List.length spans)
      (List.length events);
    List.iter
      (fun ev ->
        Alcotest.(check bool) "complete event" true
          (Json.member "ph" ev = Some (Json.Str "X"));
        List.iter
          (fun k ->
            Alcotest.(check bool) ("has " ^ k) true (Json.member k ev <> None))
          [ "name"; "ts"; "dur"; "pid"; "tid" ])
      events
  | _ -> Alcotest.fail "no traceEvents array"

(* ---------------- Counters facade over the registry ---------------- *)

let test_counters_delegation () =
  Counters.reset ();
  Counters.tick ~n:5 "obs_a";
  Counters.tick "obs_b";
  Alcotest.(check (list (pair string int)))
    "snapshot" [ ("obs_a", 5); ("obs_b", 1) ] (Counters.snapshot ());
  (* Both doors share the same cell. *)
  Alcotest.(check int) "registry sees ticks" 5
    (Metrics.value (Metrics.counter "obs_a"));
  Metrics.incr ~n:2 (Metrics.counter "obs_a");
  Alcotest.(check int) "facade sees handle increments" 7 (Counters.get "obs_a");
  Counters.without_counting (fun () ->
      Counters.tick "obs_a";
      Metrics.incr (Metrics.counter "obs_b"));
  Alcotest.(check int) "without_counting suppresses facade" 7
    (Counters.get "obs_a");
  Alcotest.(check int) "without_counting suppresses handles" 1
    (Counters.get "obs_b");
  let (), snap = Counters.measure (fun () -> Counters.tick "obs_c") in
  Alcotest.(check (list (pair string int))) "measure" [ ("obs_c", 1) ] snap;
  Counters.reset ()

(* Interned handles must beat string ticks on the hot path: the handle
   increment is a flag read plus a field add, the string path re-hashes and
   re-probes per call.  Best-of-3 over 1M iterations keeps this robust. *)
let test_interned_beats_string () =
  let iters = 1_000_000 in
  let h = Metrics.counter "obs_micro_interned" in
  let interned () =
    for _ = 1 to iters do
      Metrics.incr h
    done
  in
  let stringly () =
    for _ = 1 to iters do
      Counters.tick "obs_micro_string"
    done
  in
  let time f =
    let t0 = Clock.now_ns () in
    f ();
    Clock.elapsed_ns t0
  in
  let best f =
    ignore (time f);
    List.fold_left min max_int (List.init 3 (fun _ -> time f))
  in
  let ti = best interned in
  let ts = best stringly in
  Counters.reset ();
  Alcotest.(check bool)
    (Printf.sprintf "interned %d ns < string %d ns" ti ts)
    true (ti < ts)

(* ---------------- q-error ---------------- *)

let test_qerror_math () =
  let check name expected est actual =
    Alcotest.(check (float 1e-9)) name expected (Profile.qerror ~est ~actual)
  in
  check "exact" 1.0 16.0 16;
  check "over by 10x" 10.0 100.0 10;
  check "under by 10x" 10.0 10.0 100;
  check "both clamped" 1.0 0.0 0;
  check "zero actual clamps" 8.0 8.0 0;
  check "zero estimate clamps" 8.0 0.0 8

(* ---------------- Profile ---------------- *)

let semijoin_plan () =
  Planner.plan
    (semijoin ~x:"s" ~y:"p"
       (exists "z" (var "s" $. "parts_supplied") (eq (var "z") (var "p" $. "oid")))
       (table "SUPPLIER")
       (select "p" (table "PART") (eq (var "p" $. "color") (str "red"))))

let test_profile_hand_built () =
  let cat = Util.small_catalog () in
  let plan = semijoin_plan () in
  let plain = Exec.run cat plan in
  let v, root = Profile.run cat plan in
  Alcotest.check Util.value "profiled = plain" plain v;
  Alcotest.(check int) "root rows" (Value.set_size plain) root.Profile.actual_rows;
  Alcotest.(check int) "one node per plan node" 4
    (List.length (Profile.preorder root));
  List.iter
    (fun (n : Profile.node) ->
      Alcotest.(check int) (n.label ^ " executed once") 1 n.calls;
      Alcotest.(check bool) (n.label ^ " est matches cost model") true
        (Float.equal n.est_rows (Njq_engine.Cost.rows_out cat n.plan));
      Alcotest.(check (float 1e-9))
        (n.label ^ " qerror consistent")
        (Profile.qerror ~est:n.est_rows ~actual:n.actual_rows)
        n.qerror;
      Alcotest.(check bool) (n.label ^ " qerror >= 1") true (n.qerror >= 1.0);
      Alcotest.(check bool) (n.label ^ " wall_ns >= 0") true (n.wall_ns >= 0))
    (Profile.preorder root);
  (* The semijoin node itself does the hash work. *)
  let root_work = root.Profile.work in
  Alcotest.(check bool) "root ticks hash counters" true
    (List.mem_assoc "hash_build" root_work && List.mem_assoc "hash_probe" root_work);
  (* Under pipelined execution the root owns the whole fused loop, so the
     scans' ticks land on its exclusive work; flipping the mode off
     restores the old one-node-one-bracket attribution. *)
  Alcotest.(check bool) "fused scan work lands on the loop owner" true
    (List.mem_assoc "scan_row" root_work);
  Exec.pipeline_exec := false;
  Fun.protect
    ~finally:(fun () -> Exec.pipeline_exec := true)
    (fun () ->
      let _, root = Profile.run cat plan in
      let root_work = root.Profile.work in
      Alcotest.(check bool) "materializing mode: scan work stays on the scan"
        true
        (not (List.mem_assoc "scan_row" root_work)))

(* The acceptance property: non-perturbing actuals equal the materializing
   Instrument oracle's per-node rows exactly, label by label in pre-order,
   on the paper's query workload. *)
let test_profile_matches_instrument () =
  let gcat =
    Njq_workload.Generator.catalog
      { Njq_workload.Generator.default_config with dangling_rate = 0.0 }
  in
  List.iter
    (fun (q : Njq_workload.Queries.query) ->
      let adl = Njq_workload.Queries.to_adl q in
      let plan = Planner.plan (Njq_core.Strategy.optimize gcat adl) in
      let instrumented, reports = Instrument.run gcat plan in
      let profiled, root = Profile.run gcat plan in
      Alcotest.check Util.value (q.id ^ " same result") instrumented profiled;
      let inst_rows =
        List.map (fun (r : Instrument.node_report) -> (r.label, r.rows)) reports
      in
      let prof_rows =
        List.map
          (fun (n : Profile.node) -> (n.label, n.actual_rows))
          (Profile.preorder root)
      in
      Alcotest.(check (list (pair string int)))
        (q.id ^ " per-node rows match instrument")
        inst_rows prof_rows)
    (Njq_workload.Queries.all @ Njq_workload.Queries.extended)

(* Profiling must not perturb the work counters the run would tick bare. *)
let test_profile_non_perturbing_counters () =
  let cat = Util.small_catalog () in
  let plan = semijoin_plan () in
  let _, bare = Counters.measure (fun () -> Exec.run cat plan) in
  let _, profiled =
    Counters.measure (fun () -> fst (Profile.run cat plan))
  in
  Alcotest.(check (list (pair string int))) "same counters" bare profiled

let () =
  Alcotest.run "obs"
    [ ( "json",
        [ Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse units" `Quick test_json_parse_units ] );
      ( "spans",
        [ Alcotest.test_case "nesting and ordering" `Quick test_span_nesting;
          Alcotest.test_case "disabled is no-op" `Quick test_span_disabled_is_noop;
          Alcotest.test_case "pipeline spans" `Quick test_pipeline_spans ] );
      ( "export",
        [ Alcotest.test_case "spans JSON well-formed" `Quick
            test_export_json_wellformed;
          Alcotest.test_case "chrome trace well-formed" `Quick
            test_chrome_trace_wellformed ] );
      ( "metrics",
        [ Alcotest.test_case "counters delegate to registry" `Quick
            test_counters_delegation;
          Alcotest.test_case "interned beats string tick" `Slow
            test_interned_beats_string ] );
      ( "profile",
        [ Alcotest.test_case "q-error math" `Quick test_qerror_math;
          Alcotest.test_case "hand-built plan" `Quick test_profile_hand_built;
          Alcotest.test_case "matches instrument on workload" `Quick
            test_profile_matches_instrument;
          Alcotest.test_case "non-perturbing counters" `Quick
            test_profile_non_perturbing_counters ] ) ]
