(* Tests for the push-based pipelined executor (DESIGN.md section 8).

   The contract under test: [Exec.pipeline_exec] selects between the
   pipelined (push-based, default) and materializing executors, and the
   two modes are observationally identical — same row lists (same rows in
   the same order), same work-counter totals — for the whole paper
   workload, for fixed plans with deep fused chains, for random plans,
   and at every pool size when the plan contains parallel operators.
   Only the allocation profile may differ (that difference is the point;
   bench b13 measures it). *)

open Njq_adl
open Dsl
module Gen = Njq_workload.Generator
module Queries = Njq_workload.Queries
module Strategy = Njq_core.Strategy
module Plan = Njq_engine.Plan
module Exec = Njq_engine.Exec
module Planner = Njq_engine.Planner
module Pool = Njq_engine.Pool

let with_pipeline flag f =
  let prev = !Exec.pipeline_exec in
  Exec.pipeline_exec := flag;
  Fun.protect ~finally:(fun () -> Exec.pipeline_exec := prev) f

let with_domains k f =
  let prev = Pool.domains () in
  Pool.set_domains k;
  Fun.protect ~finally:(fun () -> Pool.set_domains prev) f

let with_par_threshold t f =
  let prev = !Planner.par_threshold in
  Planner.par_threshold := t;
  Fun.protect ~finally:(fun () -> Planner.par_threshold := prev) f

let snapshot = Alcotest.(list (pair string int))
let row_list = Alcotest.(list Util.value)

(* Run [plan] in one mode, returning the ordered row list and the full
   counter snapshot of the run. *)
let run_mode flag cat plan =
  with_pipeline flag (fun () ->
      Counters.reset ();
      let rows = Exec.rows cat plan in
      (rows, Counters.snapshot ()))

let check_modes_agree name cat plan =
  let mat_rows, mat_counters = run_mode false cat plan in
  let pipe_rows, pipe_counters = run_mode true cat plan in
  Alcotest.check row_list (name ^ ": rows (and their order)") mat_rows pipe_rows;
  Alcotest.check snapshot (name ^ ": counter totals") mat_counters pipe_counters

(* ------------------------------------------------------------------ *)
(* Paper workload: every corpus query, optimized and planned, agrees
   between the two modes on rows, order and counters. *)

let test_workload_modes_agree () =
  let cat = Gen.catalog { (Gen.scaled ~seed:7 48) with Gen.dangling_rate = 0.0 } in
  List.iter
    (fun (q : Queries.query) ->
      let plan = Planner.plan (Strategy.optimize cat (Queries.to_adl q)) in
      check_modes_agree q.Queries.id cat plan)
    (Queries.all @ Queries.extended)

(* ------------------------------------------------------------------ *)
(* Fixed plans with deep fused chains (the b13 shapes): scan->filter->
   map->project, hash join with both sides fused, union into one dedup
   sink, flatten over a set-valued attribute, nestjoin grouping. *)

let fused_plans () =
  let chain =
    Plan.ProjectOp
      ( [ "oid"; "pp" ],
        Plan.MapOp
          { var = "p";
            body =
              tuple
                [ ("oid", var "p" $. "oid");
                  ("pp", mul (var "p" $. "price") (int 2));
                  ("color", var "p" $. "color") ];
            input =
              Plan.Filter
                { var = "p"; pred = gt (var "p" $. "price") (int 5);
                  input = Plan.Scan "PART" } } )
  in
  let probe =
    Plan.JoinOp
      { algo = Plan.Hash; kind = Expr.Inner; xvar = "d"; yvar = "s";
        keys = [ (var "d" $. "supplier", var "s" $. "soid") ];
        residual = Expr.true_;
        left =
          Plan.Filter
            { var = "d"; pred = ge (count (var "d" $. "supply")) (int 0);
              input = Plan.Scan "DELIVERY" };
        right =
          Plan.MapOp
            { var = "s";
              body =
                tuple
                  [ ("soid", var "s" $. "oid"); ("sname", var "s" $. "sname") ];
              input = Plan.Scan "SUPPLIER" } }
  in
  let union_plan =
    Plan.UnionOp
      ( Plan.Filter
          { var = "p"; pred = eq (var "p" $. "color") (str "red");
            input = Plan.Scan "PART" },
        Plan.Filter
          { var = "p"; pred = gt (var "p" $. "price") (int 10);
            input = Plan.Scan "PART" } )
  in
  let flatten_plan =
    Plan.FlattenOp
      (Plan.MapOp
         { var = "s"; body = var "s" $. "parts_supplied";
           input =
             Plan.Filter
               { var = "s";
                 pred = ge (count (var "s" $. "parts_supplied")) (int 1);
                 input = Plan.Scan "SUPPLIER" } })
  in
  let nest_plan =
    Plan.NestjoinOp
      { algo = Plan.Hash; xvar = "s"; yvar = "d";
        keys = [ (var "s" $. "oid", var "d" $. "supplier") ];
        residual = Expr.true_; body = var "d" $. "date"; attr = "delivered";
        left = Plan.Scan "SUPPLIER"; right = Plan.Scan "DELIVERY" }
  in
  [ ("chain", chain); ("probe", probe); ("union", union_plan);
    ("flatten", flatten_plan); ("nest", nest_plan) ]

let test_fused_chain_modes_agree () =
  let cat = Gen.catalog { (Gen.scaled ~seed:1 64) with Gen.dangling_rate = 0.0 } in
  List.iter (fun (name, plan) -> check_modes_agree name cat plan) (fused_plans ())

(* ------------------------------------------------------------------ *)
(* Parallel interop: parallelized corpus plans plus a chunk-streaming
   ParFilter chain agree between modes at every pool size. *)

let test_parallel_modes_agree () =
  let cat = Gen.catalog { (Gen.scaled ~seed:3 48) with Gen.dangling_rate = 0.0 } in
  let par_chain =
    Plan.MapOp
      { var = "p";
        body =
          tuple
            [ ("oid", var "p" $. "oid"); ("pp", mul (var "p" $. "price") (int 2)) ];
        input =
          Plan.ParFilter
            { var = "p"; pred = gt (var "p" $. "price") (int 5);
              input = Plan.Scan "PART" } }
  in
  let corpus =
    List.map
      (fun (q : Queries.query) ->
        let seq = Planner.plan (Strategy.optimize cat (Queries.to_adl q)) in
        ( q.Queries.id,
          with_par_threshold 1 (fun () -> Planner.parallelize cat seq) ))
      Queries.all
  in
  List.iter
    (fun k ->
      with_domains k (fun () ->
          List.iter
            (fun (name, plan) ->
              check_modes_agree (Printf.sprintf "%s at %d domains" name k) cat
                plan)
            (("par_chain", par_chain) :: corpus)))
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Property: random rewritten query plans agree between the two modes on
   the ordered row list. *)

let prop_pipeline_differential =
  Util.qcheck ~count:150 "pipelined executor matches materializing"
    Util.arbitrary_xy_pred_and_tables
    (fun (pred, tables) ->
      let cat = Util.xy_catalog tables in
      let q = select "x" (table "X") pred in
      let plan = Planner.plan (Strategy.optimize cat q) in
      let mat_rows, mat_counters = run_mode false cat plan in
      let pipe_rows, pipe_counters = run_mode true cat plan in
      List.length mat_rows = List.length pipe_rows
      && List.for_all2 Value.equal mat_rows pipe_rows
      && mat_counters = pipe_counters)

let () =
  Alcotest.run "pipeline"
    [ ( "modes",
        [ Alcotest.test_case "workload modes agree" `Quick
            test_workload_modes_agree;
          Alcotest.test_case "fused chains agree (incl. order)" `Quick
            test_fused_chain_modes_agree;
          Alcotest.test_case "parallel interop at 1/2/4 domains" `Quick
            test_parallel_modes_agree ] );
      ("properties", [ prop_pipeline_differential ]) ]
