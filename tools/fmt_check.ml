(* Formatting hygiene check, wired to the @fmt alias (and from there into
   @runtest).  The build image carries no ocamlformat binary, so instead of
   a full reformat this enforces the invariants the codebase already
   follows and that a formatter would keep: no tab characters, no trailing
   whitespace, and a final newline in every OCaml source file.  It walks
   the directories given on the command line and exits non-zero listing
   every violation. *)

let ocaml_source name =
  Filename.check_suffix name ".ml" || Filename.check_suffix name ".mli"

let rec walk dir acc =
  Array.fold_left
    (fun acc entry ->
      let path = Filename.concat dir entry in
      if Sys.is_directory path then
        if String.length entry > 0 && entry.[0] = '.' then acc
        else walk path acc
      else if ocaml_source entry then path :: acc
      else acc)
    acc (Sys.readdir dir)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let check path =
  let s = read_file path in
  let violations = ref [] in
  let add line msg = violations := (line, msg) :: !violations in
  let line = ref 1 in
  let line_start = ref 0 in
  let end_line i =
    (* i is the index of '\n' (or length at EOF); flag trailing blanks. *)
    if i > !line_start then begin
      let last = s.[i - 1] in
      if last = ' ' || last = '\t' then add !line "trailing whitespace"
    end;
    incr line;
    line_start := i + 1
  in
  String.iteri
    (fun i c ->
      if c = '\t' then add !line "tab character"
      else if c = '\n' then end_line i)
    s;
  if String.length s > 0 then begin
    if s.[String.length s - 1] <> '\n' then begin
      end_line (String.length s);
      add (!line - 1) "no final newline"
    end
  end;
  List.rev !violations

let () =
  let dirs =
    match List.tl (Array.to_list Sys.argv) with
    | [] -> [ "." ]
    | dirs -> dirs
  in
  let files =
    List.sort String.compare
      (List.concat_map (fun d -> walk d []) dirs)
  in
  let failed = ref false in
  List.iter
    (fun path ->
      List.iter
        (fun (line, msg) ->
          failed := true;
          Printf.eprintf "%s:%d: %s\n" path line msg)
        (check path))
    files;
  if !failed then begin
    Printf.eprintf "fmt check failed\n";
    exit 1
  end
  else Printf.printf "fmt check: %d files clean\n" (List.length files)
