(* Guard against silent baseline drift: the perf-regression gate
   (json_check --baseline) compares per-(experiment, variant) rows, so a
   renamed or added bench variant that is not also regenerated into
   BENCH_baseline.json would simply stop being gated.  This checker reads
   the committed baseline and the harness's own "--list" enumeration
   ("id variant" lines on stdin) and refuses any mismatch in either
   direction, with a message telling the author to regenerate the
   baseline alongside the bench change.

   Usage: bench_main --list --scale N b13 b14 b15 | baseline_check BASELINE *)

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("baseline_check: " ^ s);
      exit 1)
    fmt

(* Minimal extraction — enough to pull "id" and "variants" out of each
   experiment without depending on the library: find every experiment
   object's id string and variant-name strings in order.  The baseline is
   machine-written by bench/main.ml, so the shapes are fixed. *)
let read_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> s
  | exception Sys_error msg -> fail "%s" msg

(* Scan [src] for ["key": "value"] and ["key": [ "v1", "v2", ... ]]
   occurrences of the given keys, preserving document order. *)
let baseline_pairs src =
  let n = String.length src in
  let pairs = ref [] in
  let cur_id = ref None in
  let rec skip_ws i = if i < n && (src.[i] = ' ' || src.[i] = '\n' || src.[i] = '\t' || src.[i] = '\r') then skip_ws (i + 1) else i in
  let parse_str i =
    (* i points at the opening quote *)
    let buf = Buffer.create 16 in
    let rec go i =
      if i >= n then fail "unterminated string in baseline"
      else
        match src.[i] with
        | '"' -> (Buffer.contents buf, i + 1)
        | '\\' when i + 1 < n ->
          Buffer.add_char buf src.[i + 1];
          go (i + 2)
        | c ->
          Buffer.add_char buf c;
          go (i + 1)
    in
    go (i + 1)
  in
  let looking_at i s =
    let l = String.length s in
    i + l <= n && String.equal (String.sub src i l) s
  in
  let i = ref 0 in
  while !i < n do
    if looking_at !i "\"id\"" then begin
      let j = skip_ws (!i + 4) in
      if j < n && src.[j] = ':' then begin
        let j = skip_ws (j + 1) in
        if j < n && src.[j] = '"' then begin
          let id, j' = parse_str j in
          cur_id := Some id;
          i := j'
        end
        else i := j
      end
      else i := j
    end
    else if looking_at !i "\"variants\"" then begin
      let j = skip_ws (!i + 10) in
      if j < n && src.[j] = ':' then begin
        let j = skip_ws (j + 1) in
        if j < n && src.[j] = '[' then begin
          let j = ref (j + 1) in
          let vs = ref [] in
          let stop = ref false in
          while not !stop do
            let k = skip_ws !j in
            if k >= n then fail "unterminated variants array in baseline"
            else if src.[k] = ']' then begin
              j := k + 1;
              stop := true
            end
            else if src.[k] = '"' then begin
              let v, k' = parse_str k in
              vs := v :: !vs;
              j := k'
            end
            else j := k + 1
          done;
          (match !cur_id with
           | Some id ->
             List.iter (fun v -> pairs := (id, v) :: !pairs) (List.rev !vs)
           | None -> fail "variants array before any \"id\" in baseline");
          i := !j
        end
        else i := j
      end
      else i := j
    end
    else incr i
  done;
  List.rev !pairs

let read_listing ic =
  let rec go acc =
    match In_channel.input_line ic with
    | None -> List.rev acc
    | Some line ->
      let line = String.trim line in
      if String.equal line "" then go acc
      else
        (match String.index_opt line ' ' with
         | Some sp ->
           let id = String.sub line 0 sp in
           let v = String.sub line (sp + 1) (String.length line - sp - 1) in
           go ((id, v) :: acc)
         | None -> fail "malformed listing line %S (want \"id variant\")" line)
  in
  go []

let () =
  let baseline_path =
    match Array.to_list Sys.argv with
    | [ _; p ] -> p
    | _ -> fail "usage: bench --list ... | baseline_check BASELINE.json"
  in
  let committed = baseline_pairs (read_file baseline_path) in
  let live = read_listing In_channel.stdin in
  if live = [] then fail "empty variant listing on stdin";
  let show (id, v) = Printf.sprintf "%s/%s" id v in
  let missing = List.filter (fun p -> not (List.mem p committed)) live in
  let stale = List.filter (fun p -> not (List.mem p live)) committed in
  if missing <> [] || stale <> [] then begin
    List.iter
      (fun p ->
        Printf.eprintf
          "baseline_check: variant %s exists in the bench but not in %s\n"
          (show p) baseline_path)
      missing;
    List.iter
      (fun p ->
        Printf.eprintf
          "baseline_check: variant %s exists in %s but not in the bench\n"
          (show p) baseline_path)
      stale;
    fail
      "bench variants and %s disagree — regenerate the baseline (bench \
       --work-only --json ... then copy BENCH_engine.json) in the same change"
      baseline_path
  end;
  Printf.printf "baseline_check: %d variants match %s\n" (List.length live)
    baseline_path
